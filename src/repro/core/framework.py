"""The PaPar facade: configuration in, partitions (or generated code) out.

Usage mirrors the paper's Figure 3 architecture::

    papar = PaPar()
    papar.register_input(BLAST_INPUT_XML)          # input-data config
    wf = papar.load_workflow(BLAST_WORKFLOW_XML)    # workflow config
    plan = papar.plan(wf, {"input_path": "...", "output_path": "...",
                           "num_partitions": 16})
    source = papar.generate_code(plan)              # codegen path
    result = papar.run(wf, args=..., data=dataset,  # or execute directly
                       backend="mpi", num_ranks=32, cluster=testbed)
"""

from __future__ import annotations

import os
from typing import Any, Optional, Union

from repro.cluster.model import ClusterModel
from repro.config.schema import load_input_config, parse_input_config
from repro.config.workflow import WorkflowSpec, load_workflow_config, parse_workflow_config
from repro.core.codegen import compile_partitioner, generate_partitioner_source
from repro.core.dataset import Dataset
from repro.core.planner import Planner, WorkflowPlan
from repro.core.runtime import MPIRuntime, PartitionResult, SerialRuntime
from repro.errors import ConfigError, WorkflowError
from repro.formats.binary import BinaryInputFormat, read_binary
from repro.formats.records import RecordSchema
from repro.formats.text import read_text_array


class PaPar:
    """The parallel data partitioning framework."""

    def __init__(self) -> None:
        self._schemas: dict[str, RecordSchema] = {}
        self._planner = Planner()

    # -- input-data configurations -----------------------------------------

    def register_input(self, xml: str) -> RecordSchema:
        """Register an input-data configuration (Figure 4/5 XML text)."""
        schema = parse_input_config(xml)
        self._schemas[schema.id] = schema
        return schema

    def register_input_file(self, path: Union[str, os.PathLike]) -> RecordSchema:
        """Register an input-data configuration from disk."""
        schema = load_input_config(path)
        self._schemas[schema.id] = schema
        return schema

    def register_schema(self, schema: RecordSchema) -> RecordSchema:
        """Register a programmatically built schema."""
        self._schemas[schema.id] = schema
        return schema

    def schema(self, schema_id: str) -> RecordSchema:
        """Look up a registered schema by its ``input id``."""
        if schema_id not in self._schemas:
            raise ConfigError(
                f"no input schema {schema_id!r} registered; known: {sorted(self._schemas)}"
            )
        return self._schemas[schema_id]

    # -- workflow configurations ----------------------------------------------

    @staticmethod
    def load_workflow(xml: str) -> WorkflowSpec:
        """Parse a workflow configuration (Figure 8/10 XML text)."""
        return parse_workflow_config(xml)

    @staticmethod
    def load_workflow_file(path: Union[str, os.PathLike]) -> WorkflowSpec:
        """Parse a workflow configuration from disk."""
        return load_workflow_config(path)

    # -- static analysis -----------------------------------------------------------

    def lint(
        self,
        workflow: Union[WorkflowSpec, str],
        args: Optional[dict[str, Any]] = None,
        inputs: Any = (),
        ranks: Optional[int] = None,
        do_plan: bool = True,
        memory_budget: Optional[str] = None,
        assume_records: Optional[int] = None,
        backend: Optional[str] = None,
        faults: bool = False,
        checkpoint: bool = False,
        serve: bool = False,
    ):
        """Statically analyze a workflow configuration without executing it.

        Returns a :class:`~repro.analysis.diagnostics.LintResult` holding
        *every* finding (stable ``PAPnnn`` codes, severities, source
        locations, suggested fixes — see ``docs/lint-rules.md``).  Schemas
        registered on this instance participate in the type-flow rules;
        ``inputs`` adds extra input-config XML texts for this call only.
        A declared ``memory_budget`` (plus an optional ``assume_records``
        input size) enables the out-of-core sizing rules (PAP06x).
        """
        from repro.analysis.engine import Linter
        from repro.config.serialize import workflow_to_xml

        if isinstance(workflow, WorkflowSpec):
            xml = workflow_to_xml(workflow)
            filename = workflow.source_file or "<workflow>"
        else:
            xml = workflow
            filename = "<workflow>"
        return Linter(
            schemas=self._schemas, ranks=ranks,
            memory_budget=memory_budget, assume_records=assume_records,
            backend=backend, faults=faults, checkpoint=checkpoint,
            serve=serve,
        ).lint(
            xml,
            filename=filename,
            inputs=[(text, None) for text in inputs],
            args=args,
            do_plan=do_plan,
        )

    def lint_files(
        self,
        workflow_path: Union[str, os.PathLike],
        input_paths: Any = (),
        args: Optional[dict[str, Any]] = None,
        ranks: Optional[int] = None,
        do_plan: bool = True,
        memory_budget: Optional[str] = None,
        assume_records: Optional[int] = None,
        backend: Optional[str] = None,
        faults: bool = False,
        checkpoint: bool = False,
        serve: bool = False,
    ):
        """Statically analyze configuration files (see :meth:`lint`)."""
        from repro.analysis.engine import Linter

        return Linter(
            schemas=self._schemas, ranks=ranks,
            memory_budget=memory_budget, assume_records=assume_records,
            backend=backend, faults=faults, checkpoint=checkpoint,
            serve=serve,
        ).lint_paths(
            os.fspath(workflow_path),
            [os.fspath(p) for p in input_paths],
            args=args,
            do_plan=do_plan,
        )

    def optimize(
        self,
        workflow: Union[WorkflowSpec, str],
        args: Optional[dict[str, Any]] = None,
        ranks: Optional[int] = None,
        assume_records: Optional[int] = None,
        memory_budget: Optional[str] = None,
    ):
        """Apply the PAP08x rewrite passes and return the optimized plan.

        Returns an :class:`~repro.analysis.optimize.OptimizedPlan`: the
        rewritten :class:`WorkflowSpec` plus the audit trail (rewrites
        applied, rewrites refused and why, the planned column pruning, and
        the cost-model estimates).  Schemas registered on this instance
        drive the liveness and width analyses.  See ``docs/optimizer.md``.
        """
        from repro.analysis.optimize import optimize_spec

        spec = self.load_workflow(workflow) if isinstance(workflow, str) else workflow
        return optimize_spec(
            spec,
            args=args,
            schemas=self._schemas,
            ranks=ranks,
            assume_records=assume_records,
            memory_budget=memory_budget,
            filename=spec.source_file,
        )

    # -- planning and code generation ----------------------------------------------

    def plan(
        self,
        workflow: Union[WorkflowSpec, str],
        args: Optional[dict[str, Any]] = None,
    ) -> WorkflowPlan:
        """Resolve arguments and build the executable job sequence.

        When the workflow's input format is a registered schema, every
        operator key is validated against the fields available at that stage
        (input fields plus attributes earlier add-ons introduced), so typos
        fail at plan time instead of mid-run.
        """
        spec = self.load_workflow(workflow) if isinstance(workflow, str) else workflow
        plan = self._planner.plan(spec, args)
        if plan.input_format_id in self._schemas:
            self._validate_keys(plan, self._schemas[plan.input_format_id])
        return plan

    @staticmethod
    def _validate_keys(plan: WorkflowPlan, schema: RecordSchema) -> None:
        from repro.ops.group import Group
        from repro.ops.sort import Sort
        from repro.ops.split import Split

        available = set(schema.field_names)
        for job in plan.jobs:
            op = job.operator
            key = getattr(op, "key", None)
            if isinstance(op, (Sort, Group, Split)) and key not in available:
                raise WorkflowError(
                    f"operator {job.op_id!r} keys on {key!r}, which is not "
                    f"available at this stage; known fields: {sorted(available)}"
                )
            if isinstance(op, Group):
                available |= set(op.added_attrs)

    def generate_code(self, plan: WorkflowPlan) -> str:
        """Emit the standalone Python partitioner for ``plan``."""
        return generate_partitioner_source(plan)

    def compile(self, plan: WorkflowPlan):
        """Generate and import the partitioner module (has a ``run`` function)."""
        return compile_partitioner(plan)

    # -- data loading --------------------------------------------------------------

    def load_dataset(self, path: Union[str, os.PathLike], schema_id: str) -> Dataset:
        """Read an input file through its registered schema."""
        schema = self.schema(schema_id)
        if schema.input_format == "binary":
            return Dataset.from_array(schema, read_binary(path, schema))
        return Dataset.from_array(schema, read_text_array(path, schema))

    def input_format(self, path: Union[str, os.PathLike], schema_id: str):
        """A Hadoop-style InputFormat over ``path`` (binary schemas)."""
        return BinaryInputFormat(path, self.schema(schema_id))

    def partition_files(
        self,
        workflow: Union[WorkflowSpec, str],
        args: dict[str, Any],
        backend: str = "serial",
        num_ranks: int = 1,
        cluster: Optional[ClusterModel] = None,
        schema_id: Optional[str] = None,
        optimize: bool = False,
        **fault_tolerance: Any,
    ):
        """End-to-end: read the input file, partition, write part-NNNNN files.

        Extra keyword arguments (``faults``, ``checkpoint``, ``retry``,
        ``chaos_seed``, ``deadlock_grace``) configure fault tolerance, as in
        :meth:`run`; ``memory_budget`` streams the input out-of-core
        instead of loading it (see :meth:`run`); ``optimize`` applies the
        PAP08x rewrite passes before planning (see :meth:`optimize`).
        """
        from repro.core.files import partition_files as _partition_files

        return _partition_files(
            self,
            workflow,
            args,
            backend=backend,
            num_ranks=num_ranks,
            cluster=cluster,
            schema_id=schema_id,
            optimize=optimize,
            **fault_tolerance,
        )

    def warm_start(
        self,
        workflow: Union[WorkflowSpec, str],
        args: dict[str, Any],
        backend: str = "serial",
        num_ranks: int = 1,
        cluster: Optional[ClusterModel] = None,
        schema_id: Optional[str] = None,
        recorder: Any = None,
    ) -> tuple[WorkflowSpec, RecordSchema, Dataset, PartitionResult]:
        """Load the input file and partition it **in memory** — no part files.

        The file-less twin of :meth:`partition_files`, built for long-lived
        consumers (the ``serve`` daemon) that keep the partitions hot
        instead of materializing them: returns ``(spec, input schema,
        input dataset, result)`` so the caller owns both the raw records
        (the daemon's append-log seed) and the partitioned output.
        """
        from repro.core.files import load_input_dataset

        spec = self.load_workflow(workflow) if isinstance(workflow, str) else workflow
        data, schema = load_input_dataset(self, spec, args, schema_id=schema_id)
        result = self.run(
            spec,
            args,
            data=data,
            backend=backend,
            num_ranks=num_ranks,
            cluster=cluster,
            recorder=recorder,
        )
        return spec, schema, data, result

    # -- execution ---------------------------------------------------------------------

    def run(
        self,
        workflow: Union[WorkflowSpec, WorkflowPlan, str],
        args: Optional[dict[str, Any]] = None,
        data: Optional[Dataset] = None,
        backend: str = "serial",
        num_ranks: int = 1,
        cluster: Optional[ClusterModel] = None,
        faults: Any = None,
        checkpoint: Any = None,
        retry: Any = None,
        chaos_seed: int = 0,
        deadlock_grace: Optional[float] = None,
        recorder: Any = None,
        memory_budget: Any = None,
        optimize: bool = False,
    ) -> PartitionResult:
        """Plan (if needed) and execute a workflow over ``data``.

        With ``optimize=True`` the workflow first runs through the PAP08x
        rewrite passes (:meth:`optimize`): the rewritten job DAG executes
        instead, column-pruned runs narrow the dataset through the
        exchanges and re-attach the pruned columns afterwards, and the
        result carries an ``optimizer`` section in
        :attr:`PartitionResult.extra` (passes fired, exchanges removed,
        estimated vs. measured bytes).  Outputs are bit-identical to the
        unoptimized run on every backend.

        Fault tolerance (SPMD backends only — see :mod:`repro.fault`):
        ``faults`` takes a :class:`~repro.fault.FaultSchedule` (or CLI-style
        spec strings), ``checkpoint`` a
        :class:`~repro.fault.CheckpointStore`, ``retry`` a
        :class:`~repro.fault.RetryPolicy`; ``chaos_seed`` seeds the
        injector's deterministic draws and the backoff jitter, and
        ``deadlock_grace`` bounds blocked waits before
        :class:`~repro.errors.DeadlockError`.

        Observability: pass a :class:`~repro.obs.Recorder` as ``recorder``
        to collect the span tree, metrics, and trace events for this run
        (works on every backend; exposed on
        :attr:`PartitionResult.observability`).

        Out-of-core: pass ``memory_budget`` (e.g. ``"64MB"`` or a byte
        count) to bound every rank's working set; oversized exchanges spill
        to run files and are merged back streaming (see
        ``docs/out-of-core.md``).  ``None`` (the default) keeps the
        in-memory fast path untouched.
        """
        optimized = None
        reattach_source = None
        if optimize:
            if isinstance(workflow, WorkflowPlan):
                raise WorkflowError(
                    "optimize=True needs the workflow configuration, not an "
                    "already-planned WorkflowPlan"
                )
            optimized = self.optimize(
                workflow, args, ranks=num_ranks,
                memory_budget=memory_budget,
            )
            workflow = optimized.workflow
        if isinstance(workflow, WorkflowPlan):
            plan = workflow
        else:
            plan = self.plan(workflow, args)
        if data is None:
            raise WorkflowError("run() needs an in-memory Dataset via data=...")
        if optimized is not None and optimized.pruning is not None:
            pruning = optimized.pruning
            if (
                isinstance(data, Dataset)
                and not data.is_packed
                and all(data.schema.has_field(n) for n in pruning.live)
                and not data.schema.has_field(pruning.rowid_field)
            ):
                from repro.core.pruning import narrow_dataset

                reattach_source = data
                data = narrow_dataset(data, pruning.live)
        ft = dict(
            faults=faults,
            checkpoint=checkpoint,
            retry=retry,
            chaos_seed=chaos_seed,
            deadlock_grace=deadlock_grace,
        )
        if backend == "serial":
            if faults is not None or checkpoint is not None or retry is not None:
                raise WorkflowError(
                    "fault tolerance needs an SPMD backend; use 'mpi' or "
                    "'mapreduce' (or 'process' for checkpoint/retry recovery)"
                )
            result = SerialRuntime(
                recorder=recorder, memory_budget=memory_budget
            ).execute(plan, data)
        elif backend == "mpi":
            result = MPIRuntime(
                num_ranks=num_ranks, cluster=cluster, recorder=recorder,
                memory_budget=memory_budget, **ft
            ).execute(plan, data)
        elif backend == "mapreduce":
            from repro.core.mr_runtime import MapReduceRuntime

            result = MapReduceRuntime(
                num_ranks=num_ranks, cluster=cluster, recorder=recorder,
                memory_budget=memory_budget, **ft
            ).execute(plan, data)
        elif backend == "process":
            from repro.core.process_runtime import ProcessRuntime

            result = ProcessRuntime(
                num_ranks=num_ranks, cluster=cluster, recorder=recorder,
                memory_budget=memory_budget, **ft
            ).execute(plan, data)
        else:
            raise WorkflowError(
                f"unknown backend {backend!r}; "
                "use 'serial', 'mpi', 'mapreduce' or 'process'"
            )
        if reattach_source is not None:
            from repro.core.pruning import reattach_partition

            result.partitions = [
                reattach_partition(p, reattach_source, optimized.pruning.live)
                for p in result.partitions
            ]
        if optimized is not None:
            summary = optimized.summary()
            summary["pruning_applied"] = reattach_source is not None
            perf = result.extra.get("perf") or {}
            summary["measured_bytes_moved"] = perf.get(
                "bytes_moved", result.bytes_moved
            )
            result.extra["optimizer"] = summary
            if recorder is not None:
                from repro.obs.adapters import record_optimizer

                record_optimizer(recorder, summary)
        return result
