"""Workflow execution backends.

Two backends run the same :class:`~repro.core.planner.WorkflowPlan`:

* :class:`SerialRuntime` — single-process reference execution: each job's
  kernel is applied to the whole dataset.  Used for correctness baselines
  and by generated single-node partitioners.
* :class:`MPIRuntime` — SPMD execution on the simulated MPI runtime,
  mirroring the paper's MR-MPI mapping: sort jobs sample + range-shuffle +
  local-sort (Figure 9), group jobs hash-shuffle + local-group (Figure 11),
  distribute jobs compute global entry positions with an exclusive scan and
  shuffle entries to their partition owners.

Both backends produce identical partitions (tested); the MPI backend
additionally reports simulated time and shuffle volume when a cluster model
is attached.

Shuffle owner bucketization is shared with the MapReduce backend through
:func:`repro.mapreduce.columnar.bucketize` — one stable argsort instead of a
per-destination ``flatnonzero`` scan — and every backend threads a
:class:`~repro.mapreduce.columnar.PerfCounters` through
``PartitionResult.extra["perf"]`` (``python -m repro run --stats``).

Fault tolerance (see :mod:`repro.fault`): the SPMD backends accept a fault
schedule, a checkpoint store, and a retry policy.  Failed attempts (injected
crashes, lost/corrupted messages, deadlocks) are retried with virtual-time
backoff, resuming from the last job every rank checkpointed; the recovery
report lands in ``PartitionResult.extra["fault"]``.  Without any of those
arguments the execution path is byte-for-byte the old one — a fault-free run
pays nothing.

Observability (see :mod:`repro.obs`): every backend accepts a ``recorder``.
When one is attached the run is recorded as a span tree (plan → per-rank
job spans → shuffle spans, with virtual *and* wall time), the communicator
charge points feed idle/byte counters, and the recorder lands in
``PartitionResult.extra["obs"]`` for export (``--trace`` / ``--metrics`` /
``--timeline`` on the CLI).  Without a recorder none of this code runs.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

from repro.cluster.model import ClusterModel
from repro.core.dataset import Dataset, concat
from repro.core.planner import PlannedJob, WorkflowPlan
from repro.errors import WorkflowError
from repro.fault.checkpoint import CheckpointStore, job_key, plan_fingerprint
from repro.fault.injector import FaultInjector
from repro.fault.retry import RetryPolicy
from repro.fault.runner import execute_with_recovery
from repro.fault.schedule import FaultSchedule
from repro.mapreduce.columnar import PerfCounters, bucketize
from repro.mapreduce.sampling import sample_key_ranges
from repro.mpi import SUM, run_mpi
from repro.mpi.comm import Communicator
from repro.mpi.launcher import MPIRun
from repro.ops.distribute import Distribute
from repro.ops.group import Group
from repro.ops.sort import Sort
from repro.ops.split import Split

if TYPE_CHECKING:  # pragma: no cover - typing only; obs stays a lazy import
    from repro.obs.span import Recorder


@dataclass
class PartitionResult:
    """Output of one workflow execution."""

    partitions: list[Dataset]
    #: simulated seconds (0.0 when no cluster model was attached)
    elapsed: float = 0.0
    #: bytes moved through the fabric (MPI backend only)
    bytes_moved: int = 0
    messages: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def perf(self) -> Optional[dict[str, Any]]:
        """The perf-counter summary, when the backend recorded one."""
        return self.extra.get("perf")

    @property
    def observability(self) -> Optional["Recorder"]:
        """The :class:`~repro.obs.span.Recorder` that observed this run.

        ``None`` unless a recorder was passed to the backend; exporters in
        :mod:`repro.obs` turn it into a Chrome trace, a metrics JSON, or a
        terminal timeline.
        """
        return self.extra.get("obs")


def _dataset_rows_per_rank(data: Dataset, rank: int, size: int) -> Dataset:
    """Contiguous block decomposition preserving global entry order."""
    n = len(data)
    base, extra = divmod(n, size)
    start = rank * base + min(rank, extra)
    length = base + (1 if rank < extra else 0)
    if hasattr(data, "slice_view"):
        # an out-of-core ChunkedDataset: hand the rank a row-range view
        # instead of materializing its block (duck-typed so repro.ooc is
        # never imported on the in-memory path)
        return data.slice_view(start, length)
    return data.take(np.arange(start, start + length))


def policy_partition_ids(
    op: Distribute, global_idx: np.ndarray, total: int, backend: str = "MPI"
) -> np.ndarray:
    """Each entry's target partition under the distribution policy.

    Pure function of the global entry positions and the global entry count
    (the permutation formalization of Section III-C) — shared by both SPMD
    runtimes and the out-of-core exchange, which must compute it chunk at a
    time without re-running the count collective.
    """
    policy = op.policy.name
    if policy in ("cyclic", "graphVertexCut"):
        return global_idx % op.num_partitions
    if policy == "block":
        base, extra = divmod(total, op.num_partitions)
        sizes = np.array(
            [base + (1 if p < extra else 0) for p in range(op.num_partitions)]
        )
        return np.searchsorted(np.cumsum(sizes), global_idx, side="right")
    raise WorkflowError(f"{backend} runtime does not know policy {policy!r}")


class SerialRuntime:
    """Single-process reference execution of a plan."""

    def __init__(
        self,
        recorder: Optional["Recorder"] = None,
        memory_budget: Any = None,
    ) -> None:
        self.recorder = recorder
        #: raw memory-budget spec; parsed lazily (repro.ooc stays unimported
        #: when it is None)
        self.memory_budget = memory_budget

    def execute(self, plan: WorkflowPlan, input_data: Dataset) -> PartitionResult:
        perf = PerfCounters()
        rec = self.recorder
        ctx = spill_dir = None
        if self.memory_budget is not None:
            import tempfile

            from repro.ooc.budget import MemoryBudget
            from repro.ooc.spill import OOCContext

            spill_dir = tempfile.mkdtemp(prefix="papar-spill-")
            ctx = OOCContext(MemoryBudget.coerce(self.memory_budget), spill_dir)
        try:
            outputs: dict[str, Any] = {}
            with (
                rec.span(f"plan:{plan.workflow_id}", category="plan",
                         attrs={"backend": "serial", "ranks": 1})
                if rec is not None
                else nullcontext()
            ) as root:
                for i, job in enumerate(plan.jobs):
                    source = self._job_input(job, i, plan, outputs, input_data)
                    span = (
                        rec.span(job.op_id, category="job", rank=0, parent=root,
                                 attrs={"job_index": i,
                                        "operator": job.operator_name.lower()})
                        if rec is not None
                        else nullcontext()
                    )
                    with perf.phase(job.operator_name.lower()), span:
                        if ctx is not None:
                            outputs[job.op_id] = self._apply_ooc(
                                job.operator, source, ctx
                            )
                        else:
                            outputs[job.op_id] = job.operator.apply_local(source)
            final = outputs[plan.final_job.op_id]
            if isinstance(final, Dataset):
                final = [final]
            if ctx is not None:
                ctx.fold_into(perf)
            extra: dict[str, Any] = {"perf": perf.summary()}
            if rec is not None:
                from repro.obs.adapters import record_perf

                record_perf(rec, extra["perf"])
                extra["obs"] = rec
            return PartitionResult(partitions=list(final), extra=extra)
        finally:
            if spill_dir is not None:
                import shutil

                shutil.rmtree(spill_dir, ignore_errors=True)

    @staticmethod
    def _apply_ooc(op: Any, source: Any, ctx: Any) -> Any:
        """Run one operator under a budget: external sort when it must spill."""
        from repro.ooc.chunked import iter_dataset_chunks
        from repro.ooc.exchange import ensure_dataset
        from repro.ooc.extsort import ExternalSorter, sort_key_array

        spillable = (
            isinstance(op, Sort)
            and op.addon is None
            and not bool(getattr(source, "is_packed", False))
            and ctx.should_spill(source.nbytes)
        )
        if not spillable:
            return op.apply_local(ensure_dataset(source))
        schema = source.schema
        key_dtype = sort_key_array(
            np.empty(0, dtype=schema.dtype[op.key]), op.ascending
        ).dtype
        sorter = ExternalSorter(
            ctx, schema.dtype, key_dtype=key_dtype, max_fanin=ctx.max_fanin
        )
        for chunk in iter_dataset_chunks(source, ctx.chunk_records(schema.itemsize)):
            sorter.add_chunk(
                sort_key_array(chunk.records[op.key], op.ascending), chunk.records
            )
        return Dataset(schema=schema, records=sorter.sorted_values())

    @staticmethod
    def _job_input(
        job: PlannedJob,
        index: int,
        plan: WorkflowPlan,
        outputs: dict[str, Any],
        input_data: Dataset,
    ) -> Any:
        if job.source is None:
            if index != 0 and outputs:
                # fall back to chaining from the previous job
                prev = plan.jobs[index - 1].op_id
                return outputs[prev]
            return input_data
        val = outputs[job.source]
        if isinstance(val, list) and job.source_outputs:
            picked = [val[i] for i in job.source_outputs]
            return picked if len(picked) > 1 else picked[0]
        return val


class RecoveringRuntimeMixin:
    """Shared fault-tolerance plumbing for the SPMD runtimes.

    Subclasses provide ``num_ranks``, ``cluster`` and a ``_rank_program``
    accepting ``(comm, plan, input_data, perf_slots, checkpoint=, resume=,
    fingerprint=)``; this mixin owns the retry/resume loop around
    :func:`repro.mpi.run_mpi` and keeps the fault-free path identical to a
    runtime without any fault-tolerance configuration.
    """

    def _init_fault_tolerance(
        self,
        faults: Any = None,
        chaos_seed: int = 0,
        checkpoint: Optional[CheckpointStore] = None,
        retry: Optional[RetryPolicy] = None,
        deadlock_grace: Optional[float] = None,
    ) -> None:
        #: normalized fault schedule (``None`` when no faults were configured)
        self.faults = FaultSchedule.coerce(faults)
        self.chaos_seed = chaos_seed
        self.checkpoint = checkpoint
        self.retry = retry
        self.deadlock_grace = deadlock_grace

    def _init_observability(self, recorder: Optional["Recorder"]) -> None:
        #: optional span/metrics recorder threaded through every rank thread
        self.recorder = recorder
        #: open root-span handle while :meth:`execute` is running
        self._obs_root: Any = None

    def _init_ooc(self, memory_budget: Any) -> None:
        #: raw memory-budget spec ("64MB" / bytes / MemoryBudget / None);
        #: parsed lazily so repro.ooc is never imported when it is None
        self.memory_budget = memory_budget
        self._ooc_limit: Optional[int] = None
        self._spill_dir: Optional[str] = None

    def _ooc_setup(self) -> None:
        """Parse the budget and create the run-file directory (budgeted runs)."""
        if self.memory_budget is None:
            return
        import tempfile

        from repro.ooc.budget import MemoryBudget

        self._ooc_limit = MemoryBudget.coerce(self.memory_budget).limit
        self._spill_dir = tempfile.mkdtemp(prefix="papar-spill-")

    def _ooc_teardown(self) -> None:
        """Remove the spill directory (run files are execution-scoped)."""
        if self._spill_dir is None:
            return
        import shutil

        shutil.rmtree(self._spill_dir, ignore_errors=True)
        self._spill_dir = None

    @property
    def fault_tolerant(self) -> bool:
        """True when any fault-tolerance feature was configured."""
        return (
            bool(self.faults) or self.checkpoint is not None or self.retry is not None
        )

    def _execute_spmd(
        self, plan: WorkflowPlan, input_data: Dataset
    ) -> tuple[MPIRun, list, Optional[dict[str, Any]]]:
        """Run the rank program (with recovery when configured).

        Returns ``(run, perf_slots, fault_report)``; the report is ``None``
        for a plain run.
        """
        rank_program: Callable = self._rank_program  # type: ignore[attr-defined]
        obs_kwargs: dict[str, Any] = {}
        if self.recorder is not None:
            obs_kwargs = {"recorder": self.recorder, "obs_root": self._obs_root}
        if getattr(self, "_spill_dir", None) is not None:
            obs_kwargs["ooc_spec"] = (self._ooc_limit, self._spill_dir)
        if not self.fault_tolerant:
            perf_slots: list[Optional[PerfCounters]] = [None] * self.num_ranks
            run = run_mpi(
                rank_program,
                self.num_ranks,
                cluster=self.cluster,
                args=(plan, input_data, perf_slots),
                kwargs=obs_kwargs or None,
                deadlock_grace=self.deadlock_grace,
            )
            return run, perf_slots, None
        injector = (
            FaultInjector(self.faults, seed=self.chaos_seed) if self.faults else None
        )
        fingerprint = plan_fingerprint(plan, input_data, self.num_ranks)
        live_slots: list = []

        def attempt(resume: int, start_time: float) -> MPIRun:
            slots: list[Optional[PerfCounters]] = [None] * self.num_ranks
            live_slots[:] = [slots]
            return run_mpi(
                rank_program,
                self.num_ranks,
                cluster=self.cluster,
                args=(plan, input_data, slots),
                kwargs={
                    "checkpoint": self.checkpoint,
                    "resume": resume,
                    "fingerprint": fingerprint,
                    **obs_kwargs,
                },
                fault_injector=injector,
                deadlock_grace=self.deadlock_grace,
                start_time=start_time,
            )

        run, report = execute_with_recovery(
            attempt,
            plan=plan,
            fingerprint=fingerprint,
            size=self.num_ranks,
            store=self.checkpoint,
            retry=self.retry,
            injector=injector,
            seed=self.chaos_seed,
            recorder=self.recorder,
        )
        return run, live_slots[0], report

    def _finish_observability(
        self,
        extra: dict[str, Any],
        fault_report: Optional[dict[str, Any]],
    ) -> None:
        """Fold the run's perf/fault streams into the recorder (when attached)."""
        if self.recorder is None:
            return
        from repro.obs.adapters import record_fault_report, record_perf

        record_perf(self.recorder, extra.get("perf"))
        record_fault_report(self.recorder, fault_report)
        extra["obs"] = self.recorder


class MPIRuntime(RecoveringRuntimeMixin):
    """SPMD execution of a plan on the simulated MPI runtime."""

    #: backend label recorded on the plan span (subclasses override)
    backend_name = "mpi"

    def __init__(
        self,
        num_ranks: int,
        cluster: Optional[ClusterModel] = None,
        sample_size: int = 512,
        *,
        faults: Any = None,
        chaos_seed: int = 0,
        checkpoint: Optional[CheckpointStore] = None,
        retry: Optional[RetryPolicy] = None,
        deadlock_grace: Optional[float] = None,
        recorder: Optional["Recorder"] = None,
        memory_budget: Any = None,
    ) -> None:
        if cluster is not None and cluster.size != num_ranks:
            raise WorkflowError(
                f"cluster model has {cluster.size} ranks, runtime asked for {num_ranks}"
            )
        self.num_ranks = num_ranks
        self.cluster = cluster
        self.sample_size = sample_size
        self._init_fault_tolerance(faults, chaos_seed, checkpoint, retry, deadlock_grace)
        self._init_observability(recorder)
        self._init_ooc(memory_budget)

    # -- public API ---------------------------------------------------------

    def execute(self, plan: WorkflowPlan, input_data: Dataset) -> PartitionResult:
        self._ooc_setup()
        try:
            return self._execute(plan, input_data)
        finally:
            self._ooc_teardown()

    def _execute(self, plan: WorkflowPlan, input_data: Dataset) -> PartitionResult:
        # one perf-counter slot per rank, merged after the run (rank threads
        # write disjoint slots, so no locking is needed)
        if self.recorder is None:
            run, perf_slots, fault_report = self._execute_spmd(plan, input_data)
        else:
            with self.recorder.span(
                f"plan:{plan.workflow_id}",
                category="plan",
                attrs={"backend": self.backend_name, "ranks": self.num_ranks},
            ) as root:
                self._obs_root = root
                try:
                    run, perf_slots, fault_report = self._execute_spmd(plan, input_data)
                finally:
                    self._obs_root = None
        # each rank returns {partition_id: Dataset}; merge in partition order
        merged: dict[int, Dataset] = {}
        for rank_out in run.results:
            merged.update(rank_out)
        partitions = [merged[p] for p in sorted(merged)]
        extra: dict[str, Any] = {"perf": PerfCounters.merge_ranks(perf_slots).summary()}
        if fault_report is not None:
            extra["fault"] = fault_report
        self._finish_observability(extra, fault_report)
        return PartitionResult(
            partitions=partitions,
            elapsed=run.elapsed,
            bytes_moved=run.bytes_moved,
            messages=run.messages,
            extra=extra,
        )

    # -- per-rank program ------------------------------------------------------

    def _rank_program(
        self,
        comm: Communicator,
        plan: WorkflowPlan,
        input_data: Dataset,
        perf_slots: list,
        checkpoint: Optional[CheckpointStore] = None,
        resume: int = 0,
        fingerprint: str = "",
        recorder: Optional["Recorder"] = None,
        obs_root: Any = None,
        ooc_spec: Any = None,
    ) -> dict[int, Dataset]:
        perf = PerfCounters()
        comm.recorder = recorder
        ctx = None
        if ooc_spec is not None:
            from repro.ooc.budget import MemoryBudget
            from repro.ooc.spill import OOCContext

            limit, spill_dir = ooc_spec
            ctx = OOCContext(MemoryBudget(limit), spill_dir, rank=comm.rank)
        local: Any = _dataset_rows_per_rank(input_data, comm.rank, comm.size)
        outputs: dict[str, Any] = {}
        final: Any = None
        for i, job in enumerate(plan.jobs):
            if i < resume:
                # job fully committed by a previous attempt: restore instead
                # of recomputing (and advance to the checkpointed clock)
                saved = checkpoint.load(job_key(fingerprint, i, job.op_id, comm.rank))
                final = saved["output"]
                outputs[job.op_id] = final
                comm.clock.merge(saved["clock"])
                if recorder is not None:
                    recorder.instant(
                        f"restored:{job.op_id}", category="checkpoint",
                        rank=comm.rank, clock=comm.clock,
                    )
                continue
            source = SerialRuntime._job_input(job, i, plan, outputs, local)
            comm.check_fault(i, "before")
            job_mark = ctx.manifest_mark() if ctx is not None else 0
            self._charge_job_overhead(comm)
            span = (
                recorder.span(
                    job.op_id, category="job", rank=comm.rank, clock=comm.clock,
                    parent=obs_root,
                    attrs={"job_index": i, "operator": job.operator_name.lower()},
                )
                if recorder is not None
                else nullcontext()
            )
            with perf.phase(job.operator_name.lower(), clock=comm.clock), span:
                final = self._run_job(comm, job, source, perf, ctx)
            outputs[job.op_id] = final
            # an "after" crash fires before the checkpoint commits, so the
            # next attempt re-runs this job on every rank
            comm.check_fault(i, "after")
            if checkpoint is not None:
                payload = {"output": final, "clock": comm.clock.now}
                if ctx is not None:
                    payload["ooc"] = {"manifests": ctx.manifests_since(job_mark)}
                checkpoint.save(
                    job_key(fingerprint, i, job.op_id, comm.rank), payload
                )
        if ctx is not None:
            ctx.fold_into(perf)
        perf_slots[comm.rank] = perf
        if not isinstance(final, dict):
            raise WorkflowError(
                f"workflow {plan.workflow_id!r} must end with a Distribute job"
            )
        return final

    def _charge_job_overhead(self, comm: Communicator) -> None:
        if comm.cluster is not None:
            comm.charge_compute(comm.cluster.cost.job_overhead)

    def _charge(self, comm: Communicator, single_core_cost: float) -> None:
        if comm.cluster is not None:
            comm.charge_compute(comm.cluster.compute(single_core_cost))

    def _run_job(
        self,
        comm: Communicator,
        job: PlannedJob,
        source: Any,
        perf: PerfCounters,
        ctx: Any = None,
    ) -> Any:
        if ctx is not None:
            return self._run_job_ooc(comm, job, source, perf, ctx)
        op = job.operator
        if isinstance(op, Sort):
            return self._sort_distributed(comm, op, source, perf)
        if isinstance(op, Group):
            return self._group_distributed(comm, op, source, perf)
        if isinstance(op, Split):
            self._charge(comm, _stream_cost(comm, source))
            return op.apply_local(source)
        if isinstance(op, Distribute):
            return self._distribute_distributed(comm, op, source, perf)
        # user-registered basic operator: run its local kernel
        return op.apply_local(source)

    def _run_job_ooc(
        self,
        comm: Communicator,
        job: PlannedJob,
        source: Any,
        perf: PerfCounters,
        ctx: Any,
    ) -> Any:
        """Budget-aware twin of ``_run_job``: spills when the budget demands.

        Every operator falls back to the exact in-memory kernel when the
        (collectively agreed) working set fits the budget, so an unlimited
        budget reproduces the fast path byte for byte.
        """
        from repro.ooc.exchange import (
            ensure_dataset,
            ooc_distribute_exchange,
            ooc_group_exchange,
            ooc_sort_exchange,
        )

        op = job.operator
        if isinstance(op, Sort):
            return ooc_sort_exchange(
                comm, op, source, perf, ctx,
                sample_size=self.sample_size,
                fallback=lambda ds: self._sort_distributed(comm, op, ds, perf),
                charge_local=lambda n: self._charge(comm, _sort_cost(comm, n)),
            )
        if isinstance(op, Group):
            return ooc_group_exchange(
                comm, op, source, perf, ctx,
                sample_size=self.sample_size,
                fallback=lambda ds: self._group_distributed(comm, op, ds, perf),
                charge_local=lambda n: self._charge(comm, _hash_cost(comm, n)),
            )
        if isinstance(op, Split):
            data = ensure_dataset(source)
            self._charge(comm, _stream_cost(comm, data))
            return op.apply_local(data)
        if isinstance(op, Distribute):
            return ooc_distribute_exchange(
                comm, op, source, perf, ctx,
                dest_of=lambda p: p % comm.size,
                backend="MPI",
                charge_assemble=lambda n: self._charge(comm, _stream_cost(comm, n)),
            )
        return op.apply_local(ensure_dataset(source))

    # -- distributed sort (Figure 9, job 1) -----------------------------------

    def _sort_distributed(
        self, comm: Communicator, op: Sort, data: Dataset, perf: PerfCounters
    ) -> Dataset:
        keys = np.asarray(data.column(op.key))
        sort_keys = keys if op.ascending else -keys
        boundaries = sample_key_ranges(
            comm, sort_keys, num_reducers=comm.size, sample_size=self.sample_size
        )
        # vectorized RangePartitioner (bisect_left == searchsorted side="left")
        owners = np.searchsorted(np.asarray(boundaries), sort_keys, side="left")
        received = self._exchange_entries(comm, data, owners, perf)
        self._charge(comm, _sort_cost(comm, len(received)))
        return op.apply_local(received)

    # -- distributed group (Figure 11, job 1) -------------------------------------

    def _group_distributed(
        self, comm: Communicator, op: Group, data: Dataset, perf: PerfCounters
    ) -> Dataset:
        """Range-shuffle by the group key, then group locally.

        Key *ranges* (not hashes) keep the global group order ascending by
        key — the same canonical order the serial ``pack`` kernel produces —
        so the final partitions are identical for every rank count (the
        paper's correctness requirement).
        """
        keys = np.asarray(data.column(op.key))
        boundaries = sample_key_ranges(
            comm, keys, num_reducers=comm.size, sample_size=self.sample_size
        )
        owners = np.searchsorted(np.asarray(boundaries), keys, side="left")
        received = self._exchange_entries(comm, data, owners, perf)
        self._charge(comm, _hash_cost(comm, len(received)))
        return op.apply_local(received)

    # -- distributed distribute (Figures 9/11, last job) ----------------------------

    def _distribute_distributed(
        self, comm: Communicator, op: Distribute, source: Any, perf: PerfCounters
    ) -> dict[int, Dataset]:
        streams = [source] if isinstance(source, Dataset) else list(source)
        num_p = op.num_partitions
        per_partition: dict[int, list[tuple[int, int, Dataset]]] = {}
        for stream_idx, stream in enumerate(streams):
            n_local = len(stream)
            offset = comm.exscan(n_local, SUM, identity=0)
            global_idx = np.arange(n_local, dtype=np.int64) + offset
            owners_part = self._partition_of(op, comm, global_idx, n_local)
            # ship (partition, global position, entries) to the owning rank:
            # one grouped take per non-empty partition instead of a full
            # owners_part scan per partition
            outboxes: list[list[tuple[int, int, Any]]] = [[] for _ in range(comm.size)]
            buckets = bucketize(owners_part, num_p)
            for p, idx in enumerate(buckets):
                if not len(idx):
                    continue
                chunk = stream.take(idx)
                perf.count_move(len(idx), chunk.nbytes)
                outboxes[p % comm.size].append((p, int(global_idx[idx[0]]), chunk))
            if comm.recorder is not None:
                with comm.recorder.span(
                    "distribute-shuffle", category="shuffle",
                    rank=comm.rank, clock=comm.clock,
                    attrs={"stream": stream_idx, "records": n_local},
                ):
                    inboxes = comm.alltoall(outboxes)
            else:
                inboxes = comm.alltoall(outboxes)
            for box in inboxes:
                for p, first_idx, chunk in box:
                    per_partition.setdefault(p, []).append((stream_idx, first_idx, chunk))
        result: dict[int, Dataset] = {}
        owned = range(comm.rank, num_p, comm.size)
        if not owned:
            # this rank owns no partitions (num_p < comm.size): nothing to
            # assemble, so skip building the empty-sentinel dataset too
            return result
        empty: Optional[Dataset] = None
        for p in owned:
            chunks = per_partition.get(p)
            if not chunks:
                if empty is None:
                    empty = streams[0].take(np.empty(0, dtype=np.int64)).to_flat()
                result[p] = empty
                continue
            chunks.sort(key=lambda t: (t[0], t[1]))
            flat = [c.to_flat() for _, _, c in chunks]
            self._charge(comm, _stream_cost(comm, sum(len(f) for f in flat)))
            result[p] = concat(flat) if len(flat) > 1 else flat[0]
        return result

    def _partition_of(
        self, op: Distribute, comm: Communicator, global_idx: np.ndarray, n_local: int
    ) -> np.ndarray:
        total = comm.allreduce(n_local, SUM)
        return policy_partition_ids(op, global_idx, total, backend="MPI")

    # -- shuffle helper -------------------------------------------------------------

    def _exchange_entries(
        self,
        comm: Communicator,
        data: Dataset,
        owners: np.ndarray,
        perf: Optional[PerfCounters] = None,
    ) -> Dataset:
        """Ship each entry to ``owners[i]``; receive in source-rank order."""
        outboxes = [data.take(idx) for idx in bucketize(owners, comm.size)]
        nbytes = sum(b.nbytes for b in outboxes)
        if perf is not None:
            perf.count_move(len(owners), nbytes)
        if comm.recorder is not None:
            with comm.recorder.span(
                "shuffle", category="shuffle", rank=comm.rank, clock=comm.clock,
                attrs={"records": len(owners), "nbytes": nbytes},
            ):
                inboxes = comm.alltoall(outboxes)
        else:
            inboxes = comm.alltoall(outboxes)
        flats = [b.to_flat() for b in inboxes if len(b)]
        if not flats:
            return data.take(np.empty(0, dtype=np.int64)).to_flat()
        return concat(flats) if len(flats) > 1 else flats[0]


def _sort_cost(comm: Communicator, n: int) -> float:
    return comm.cluster.cost.sort(n) if comm.cluster else 0.0


def _hash_cost(comm: Communicator, n: int) -> float:
    return comm.cluster.cost.hash_group(n) if comm.cluster else 0.0


def _stream_cost(comm: Communicator, source: Any) -> float:
    if comm.cluster is None:
        return 0.0
    if isinstance(source, int):
        n = source
    elif isinstance(source, Dataset):
        n = source.num_records
    else:
        n = sum(s.num_records for s in source)
    return comm.cluster.cost.stream(n)
