"""PaPar core: dataset, planner, code generator, runtimes, facade.

The paper's primary contribution lives here: parse the two configuration
files, formalize the workflow as key-value jobs plus permutation-matrix
distributions, generate the parallel partitioner, and execute it on the
MPI/MapReduce backends.
"""

from repro.core.codegen import (
    compile_partitioner,
    generate_partitioner_source,
    write_partitioner,
)
from repro.core.dataset import Dataset, concat
from repro.core.framework import PaPar
from repro.core.mr_runtime import MapReduceRuntime
from repro.core.planner import PlannedJob, Planner, WorkflowPlan
from repro.core.runtime import MPIRuntime, PartitionResult, SerialRuntime

__all__ = [
    "PaPar",
    "Dataset",
    "concat",
    "Planner",
    "WorkflowPlan",
    "PlannedJob",
    "SerialRuntime",
    "MPIRuntime",
    "MapReduceRuntime",
    "PartitionResult",
    "generate_partitioner_source",
    "compile_partitioner",
    "write_partitioner",
]
