"""The in-memory dataset the operators transform.

A :class:`Dataset` couples a :class:`~repro.formats.records.RecordSchema`
with its records in one of the two layouts the paper's format operators move
between: *flat* (a numpy structured array, the ``orig`` format) or *packed*
(grouped records, :class:`~repro.formats.packed.PackedRecords`).  The paper
requires in-memory datasets explicitly: "the framework also needs to support
the in-memory data partitioning, because the intermediate data may need
repartitioning and redistribution at runtime."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.errors import FormatError
from repro.formats.packed import PackedRecords, pack as pack_records
from repro.formats.records import RecordSchema


@dataclass
class Dataset:
    """Records plus their schema, in flat or packed layout."""

    schema: RecordSchema
    records: Optional[np.ndarray] = None
    packed: Optional[PackedRecords] = None

    def __post_init__(self) -> None:
        if (self.records is None) == (self.packed is None):
            raise FormatError("Dataset needs exactly one of records / packed")
        if self.records is not None and self.records.dtype != self.schema.dtype:
            raise FormatError(
                f"records dtype {self.records.dtype} != schema {self.schema.id!r} dtype"
            )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: RecordSchema, rows: Sequence[Sequence[Any]]) -> "Dataset":
        """Build a flat dataset from row tuples."""
        return cls(schema=schema, records=schema.to_structured(rows))

    @classmethod
    def from_array(cls, schema: RecordSchema, records: np.ndarray) -> "Dataset":
        """Wrap an existing structured array."""
        return cls(schema=schema, records=records)

    @classmethod
    def from_packed(cls, packed: PackedRecords) -> "Dataset":
        """Wrap packed records."""
        return cls(schema=packed.schema, packed=packed)

    # -- introspection ----------------------------------------------------------

    @property
    def is_packed(self) -> bool:
        return self.packed is not None

    def __len__(self) -> int:
        """Number of *entries*: records when flat, groups when packed."""
        if self.packed is not None:
            return self.packed.num_groups
        return len(self.records)

    @property
    def num_records(self) -> int:
        """Underlying record count regardless of layout."""
        if self.packed is not None:
            return self.packed.num_records
        return len(self.records)

    @property
    def nbytes(self) -> int:
        if self.packed is not None:
            return self.packed.nbytes
        return self.records.nbytes

    def column(self, name: str) -> np.ndarray:
        """A field column; for packed data, one value per group (taken from
        the group's first record — uniform for key and add-on fields)."""
        if self.packed is not None:
            return np.array(
                [rows[name][0] if len(rows) else 0 for _, rows in self.packed.groups]
            )
        return self.records[name]

    # -- layout changes -----------------------------------------------------------

    def to_flat(self) -> "Dataset":
        """The ``unpack`` view of this dataset (no-op when already flat)."""
        if self.packed is None:
            return self
        return Dataset(schema=self.schema, records=self.packed.unpack())

    def to_packed(self, key_field: str) -> "Dataset":
        """The ``pack`` view of this dataset grouped by ``key_field``."""
        if self.packed is not None:
            if self.packed.key_field != key_field:
                raise FormatError(
                    f"dataset already packed by {self.packed.key_field!r}, not {key_field!r}"
                )
            return self
        return Dataset(
            schema=self.schema,
            packed=pack_records(self.records, self.schema, key_field),
        )

    def take(self, indices: Union[np.ndarray, Sequence[int]]) -> "Dataset":
        """Entry selection: records when flat, groups when packed."""
        if self.packed is not None:
            groups = [self.packed.groups[int(i)] for i in indices]
            return Dataset(
                schema=self.schema,
                packed=PackedRecords(
                    schema=self.schema, key_field=self.packed.key_field, groups=groups
                ),
            )
        return Dataset(schema=self.schema, records=self.records[np.asarray(indices)])

    def rows(self) -> list[tuple]:
        """Flat records as plain tuples (test/debug convenience)."""
        return [tuple(r) for r in self.to_flat().records]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        layout = f"packed[{self.packed.num_groups} groups]" if self.is_packed else "flat"
        return f"Dataset({self.schema.id!r}, {self.num_records} records, {layout})"


def concat(datasets: Sequence[Dataset]) -> Dataset:
    """Concatenate flat datasets sharing one schema."""
    if not datasets:
        raise FormatError("cannot concatenate zero datasets")
    schemas = {ds.schema.id for ds in datasets}
    if len(schemas) > 1:
        raise FormatError(f"cannot concatenate mixed schemas {sorted(schemas)}")
    flats = [ds.to_flat().records for ds in datasets]
    return Dataset(schema=datasets[0].schema, records=np.concatenate(flats))
