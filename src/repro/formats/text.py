"""Delimited text record files (the edge-list format of Figure 5).

Each element is one line; fields are separated by the configured delimiters
(``\\t`` between fields, ``\\n`` terminating the element, by default).
"""

from __future__ import annotations

import os
from typing import Any, Iterator, Sequence, Union

import numpy as np

from repro.errors import FormatError
from repro.formats.records import RecordSchema
from repro.mapreduce.hadoop import InputFormat, InputSplit, RecordReader

PathLike = Union[str, os.PathLike]


def format_line(row: Sequence[Any], schema: RecordSchema) -> str:
    """Render one record as its delimited text line (including terminator)."""
    delims = schema.effective_delimiters()
    parts = []
    for value, delim in zip(row, delims):
        if isinstance(value, float):
            parts.append(repr(value))
        else:
            parts.append(str(value))
        parts.append(delim)
    return "".join(parts)


def parse_line(line: str, schema: RecordSchema) -> tuple[Any, ...]:
    """Parse one line into a typed tuple according to the schema delimiters."""
    delims = schema.effective_delimiters()
    rest = line
    values = []
    for f, delim in zip(schema.fields, delims):
        if delim == "\n":
            token, rest = rest.rstrip("\r\n"), ""
        else:
            token, sep, rest = rest.partition(delim)
            if not sep:
                raise FormatError(
                    f"line {line!r} is missing delimiter {delim!r} after field {f.name!r}"
                )
        try:
            values.append(f.parse_text(token))
        except ValueError as exc:
            raise FormatError(f"cannot parse {token!r} as {f.type} for field {f.name!r}") from exc
    return tuple(values)


def write_text(path: PathLike, rows: Sequence[Sequence[Any]], schema: RecordSchema) -> None:
    """Write records as delimited text."""
    if schema.input_format != "text":
        raise FormatError(f"schema {schema.id!r} is not a text schema")
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(format_line(row, schema))


def iter_text_lines(
    path: PathLike, buffer_size: int = 1 << 16, offset: int = 0
) -> Iterator[str]:
    """Yield complete lines from fixed-size raw reads with a carry-over tail.

    A record that spans two read buffers must be neither split nor dropped:
    the unterminated tail of each buffer is carried into the next read and
    only emitted once its terminator (or end-of-file) arrives.  This is the
    boundary protocol the out-of-core chunk readers rely on, and it holds
    for any ``buffer_size >= 1`` (the boundary-fuzz test sweeps 1..64).

    ``offset`` must be the byte offset of a line start (0 or one past a
    terminator); the chunked readers use it to resume at an indexed record.
    """
    if buffer_size < 1:
        raise FormatError(f"buffer_size must be >= 1, got {buffer_size!r}")
    tail = b""
    with open(path, "rb") as fh:
        if offset:
            fh.seek(offset)
        while True:
            buf = fh.read(buffer_size)
            if not buf:
                break
            buf = tail + buf
            pieces = buf.split(b"\n")
            # the final piece has no terminator yet: carry it into the
            # next buffer instead of emitting a torn record
            tail = pieces.pop()
            for piece in pieces:
                yield piece.decode("utf-8") + "\n"
    if tail:
        yield tail.decode("utf-8")


def iter_text_records(
    path: PathLike,
    schema: RecordSchema,
    buffer_size: int = 1 << 16,
) -> Iterator[tuple[Any, ...]]:
    """Stream typed record tuples using the carry-over buffered reader."""
    if schema.input_format != "text":
        raise FormatError(f"schema {schema.id!r} is not a text schema")
    for line in iter_text_lines(path, buffer_size=buffer_size):
        if line.strip():
            yield parse_line(line, schema)


def read_text(path: PathLike, schema: RecordSchema) -> list[tuple[Any, ...]]:
    """Read a whole delimited text file into typed tuples."""
    return list(iter_text_records(path, schema))


def read_text_array(path: PathLike, schema: RecordSchema) -> np.ndarray:
    """Read a numeric text file straight into a structured array."""
    rows = read_text(path, schema)
    return schema.to_structured(rows)


class _TextRecordReader(RecordReader):
    def __init__(self, rows: list[tuple[Any, ...]]) -> None:
        self.rows = rows

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)


class ByteRangeTextInputFormat(InputFormat):
    """Hadoop's real text-splitting behaviour: byte ranges snapped to lines.

    Hadoop carves a text file into *byte* ranges without looking at content;
    each record reader then skips the partial line at the start of its range
    (the previous reader finished it) and reads past its end boundary to
    complete the final line.  This reader reproduces that protocol exactly,
    so splits can be computed from the file size alone — the property that
    lets huge inputs be split without scanning them.
    """

    def __init__(self, path: PathLike, schema: RecordSchema) -> None:
        if schema.input_format != "text":
            raise FormatError(f"schema {schema.id!r} is not a text schema")
        self.path = os.fspath(path)
        self.schema = schema
        self.file_size = os.path.getsize(self.path)

    def get_splits(self, num_splits: int) -> list[InputSplit]:
        if num_splits < 1:
            raise FormatError(f"num_splits must be >= 1, got {num_splits!r}")
        base, extra = divmod(self.file_size, num_splits)
        splits, start = [], 0
        for i in range(num_splits):
            length = base + (1 if i < extra else 0)
            splits.append(InputSplit(source=self.path, start=start, length=length))
            start += length
        return splits

    def get_record_reader(self, split: InputSplit) -> RecordReader:
        rows: list[tuple[Any, ...]] = []
        end = split.start + split.length
        with open(self.path, "rb") as fh:
            fh.seek(split.start)
            if split.start > 0:
                # the previous split's reader owns the line we land inside
                # (it reads one line past its end boundary); skip it
                fh.readline()
            # Hadoop rule: keep reading while the line *starts* at or before
            # our end boundary — the final line may extend past it
            while fh.tell() <= end:
                raw = fh.readline()
                if not raw:
                    break
                line = raw.decode("utf-8")
                if line.strip():
                    rows.append(parse_line(line, self.schema))
        return _TextRecordReader(rows)


class TextInputFormat(InputFormat):
    """Hadoop-style reader over a delimited text file.

    Splits are in units of records (lines); like Hadoop's ``TextInputFormat``
    the reader never hands half a line to a mapper.
    """

    def __init__(self, path: PathLike, schema: RecordSchema) -> None:
        if schema.input_format != "text":
            raise FormatError(f"schema {schema.id!r} is not a text schema")
        self.path = os.fspath(path)
        self.schema = schema
        self._rows = read_text(self.path, schema)

    @property
    def num_records(self) -> int:
        return len(self._rows)

    def get_splits(self, num_splits: int) -> list[InputSplit]:
        if num_splits < 1:
            raise FormatError(f"num_splits must be >= 1, got {num_splits!r}")
        base, extra = divmod(self.num_records, num_splits)
        splits, start = [], 0
        for i in range(num_splits):
            length = base + (1 if i < extra else 0)
            splits.append(InputSplit(source=self.path, start=start, length=length))
            start += length
        return splits

    def get_record_reader(self, split: InputSplit) -> RecordReader:
        return _TextRecordReader(self._rows[split.start : split.start + split.length])
