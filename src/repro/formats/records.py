"""Record schemas: the typed element layout described by input-data configs.

The paper's input configuration (Figures 4 and 5) declares an ``element`` as
an ordered list of typed ``value`` fields, optionally with delimiters (text
format) or a byte offset (binary format).  A :class:`RecordSchema` is the
in-memory form of that declaration; numeric schemas map onto numpy structured
dtypes so record batches live in contiguous arrays (the HPC fast path used by
the operators).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Sequence

import numpy as np

from repro.errors import SchemaError

#: config type name -> numpy dtype for fixed-width binary fields
_BINARY_TYPES: dict[str, np.dtype] = {
    "integer": np.dtype("<i4"),  # the paper: "4 bytes/integer"
    "long": np.dtype("<i8"),
    "float": np.dtype("<f4"),
    "double": np.dtype("<f8"),
}

#: type names that are also valid in text format (parsed from strings)
_TEXT_TYPES = set(_BINARY_TYPES) | {"string"}


@dataclass(frozen=True)
class Field:
    """One typed value inside an element."""

    name: str
    type: str

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"field name {self.name!r} is not a valid identifier")
        if self.type not in _TEXT_TYPES:
            raise SchemaError(
                f"field {self.name!r} has unknown type {self.type!r}; "
                f"expected one of {sorted(_TEXT_TYPES)}"
            )

    @property
    def numpy_dtype(self) -> np.dtype:
        if self.type == "string":
            raise SchemaError(
                f"field {self.name!r}: string fields have no fixed binary width"
            )
        return _BINARY_TYPES[self.type]

    def parse_text(self, token: str) -> Any:
        """Convert one text token to this field's Python value."""
        if self.type == "string":
            return token
        if self.type in ("integer", "long"):
            return int(token)
        return float(token)


@dataclass(frozen=True)
class RecordSchema:
    """An ordered, named, typed record layout.

    Parameters
    ----------
    id:
        The ``input id`` from the configuration file.
    fields:
        Ordered fields of one element.
    input_format:
        ``"binary"`` (fixed-width records) or ``"text"`` (delimited lines).
    start_position:
        Bytes to skip at the head of a binary file (the BLAST index starts at
        byte 32 in Figure 4).
    delimiters:
        For text format: the separator after each field (defaults to a tab
        between fields and a newline after the last, as in Figure 5).
    """

    id: str
    fields: tuple[Field, ...]
    input_format: str = "binary"
    start_position: int = 0
    delimiters: tuple[str, ...] = dc_field(default=())

    def __post_init__(self) -> None:
        if not self.fields:
            raise SchemaError(f"schema {self.id!r} declares no fields")
        if self.input_format not in ("binary", "text"):
            raise SchemaError(
                f"schema {self.id!r}: input_format must be 'binary' or 'text', "
                f"got {self.input_format!r}"
            )
        if self.start_position < 0:
            raise SchemaError(f"schema {self.id!r}: start_position must be >= 0")
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"schema {self.id!r}: duplicate field names in {names}")
        if self.input_format == "binary":
            for f in self.fields:
                if f.type == "string":
                    raise SchemaError(
                        f"schema {self.id!r}: binary format cannot hold "
                        f"variable-width string field {f.name!r}"
                    )
            if self.delimiters:
                raise SchemaError(f"schema {self.id!r}: binary format takes no delimiters")
        else:
            if self.start_position:
                raise SchemaError(f"schema {self.id!r}: text format takes no start_position")
            if self.delimiters and len(self.delimiters) != len(self.fields):
                raise SchemaError(
                    f"schema {self.id!r}: need one delimiter per field "
                    f"({len(self.fields)}), got {len(self.delimiters)}"
                )

    # -- numpy interop -------------------------------------------------------

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    @property
    def dtype(self) -> np.dtype:
        """Structured dtype of one element (binary / numeric schemas only)."""
        return np.dtype([(f.name, f.numpy_dtype) for f in self.fields])

    @property
    def itemsize(self) -> int:
        """Bytes per record in the binary layout."""
        return self.dtype.itemsize

    def index_of(self, name: str) -> int:
        """Position of field ``name`` within the element."""
        for i, f in enumerate(self.fields):
            if f.name == name:
                return i
        raise SchemaError(f"schema {self.id!r} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def to_structured(self, rows: Sequence[Sequence[Any]]) -> np.ndarray:
        """Build a structured array from row tuples."""
        return np.array([tuple(r) for r in rows], dtype=self.dtype)

    def effective_delimiters(self) -> tuple[str, ...]:
        """Delimiters with the Figure 5 default (tabs, trailing newline)."""
        if self.delimiters:
            return self.delimiters
        n = len(self.fields)
        return ("\t",) * (n - 1) + ("\n",)

    # -- schema algebra used by add-on operators --------------------------------

    def with_field(self, name: str, type: str = "long") -> "RecordSchema":
        """A new schema with an appended attribute (add-on operators add
        attributes, e.g. ``indegree`` in the hybrid-cut workflow)."""
        if self.has_field(name):
            raise SchemaError(f"schema {self.id!r} already has a field {name!r}")
        new_delims = ()
        if self.input_format == "text":
            base = self.effective_delimiters()
            new_delims = base[:-1] + ("\t", base[-1])
        return RecordSchema(
            id=self.id,
            fields=self.fields + (Field(name, type),),
            input_format=self.input_format,
            start_position=self.start_position,
            delimiters=new_delims,
        )

    def without_field(self, name: str) -> "RecordSchema":
        """A new schema with ``name`` removed (add-ons may delete attributes)."""
        idx = self.index_of(name)
        new_delims = ()
        if self.input_format == "text" and self.delimiters:
            new_delims = tuple(d for i, d in enumerate(self.delimiters) if i != idx)
            # keep a line terminator if we dropped the last field
            if new_delims and not new_delims[-1].endswith("\n"):
                new_delims = new_delims[:-1] + ("\n",)
        return RecordSchema(
            id=self.id,
            fields=tuple(f for f in self.fields if f.name != name),
            input_format=self.input_format,
            start_position=self.start_position,
            delimiters=new_delims,
        )


#: Schema of the muBLASTP four-tuple index (Figures 1, 4).
BLAST_INDEX_SCHEMA = RecordSchema(
    id="blast_db",
    fields=(
        Field("seq_start", "integer"),
        Field("seq_size", "integer"),
        Field("desc_start", "integer"),
        Field("desc_size", "integer"),
    ),
    input_format="binary",
    start_position=32,
)

#: Schema of an edge-list line ``vertex_a \t vertex_b \n`` (Figure 5).
EDGE_LIST_SCHEMA = RecordSchema(
    id="graph_edge",
    fields=(Field("vertex_a", "long"), Field("vertex_b", "long")),
    input_format="text",
    delimiters=("\t", "\n"),
)
