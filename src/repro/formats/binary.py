"""Fixed-width binary record files (the muBLASTP index format).

A binary input per Figure 4: an opaque header of ``start_position`` bytes,
then back-to-back fixed-width records.  The reader implements the Hadoop
``InputFormat`` contract — ``get_splits`` carves the byte range on record
boundaries, ``get_record_reader`` yields structured numpy rows — so mappers
can each read their own slice, which is what lets PaPar's partitioner scale
out while muBLASTP's own partitioner is stuck on one node (Section IV-B).
"""

from __future__ import annotations

import os
from typing import Iterator, Sequence, Union

import numpy as np

from repro.errors import FormatError
from repro.formats.records import RecordSchema
from repro.mapreduce.hadoop import InputFormat, InputSplit, RecordReader

PathLike = Union[str, os.PathLike]


def write_binary(
    path: PathLike,
    data: np.ndarray,
    schema: RecordSchema,
    header: bytes = b"",
) -> None:
    """Write structured records to ``path`` in the schema's binary layout.

    ``header`` must be exactly ``schema.start_position`` bytes (the BLAST
    index reserves 32 bytes of metadata that the partitioner skips).
    """
    if schema.input_format != "binary":
        raise FormatError(f"schema {schema.id!r} is not a binary schema")
    if len(header) != schema.start_position:
        raise FormatError(
            f"header must be exactly start_position={schema.start_position} bytes, "
            f"got {len(header)}"
        )
    if data.dtype != schema.dtype:
        data = data.astype(schema.dtype)
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(data.tobytes())


def read_binary(path: PathLike, schema: RecordSchema) -> np.ndarray:
    """Read the whole record section of a binary file into a structured array."""
    if schema.input_format != "binary":
        raise FormatError(f"schema {schema.id!r} is not a binary schema")
    size = os.path.getsize(path)
    body = size - schema.start_position
    if body < 0:
        raise FormatError(
            f"{path}: file smaller ({size} B) than start_position ({schema.start_position} B)"
        )
    if body % schema.itemsize != 0:
        raise FormatError(
            f"{path}: body of {body} B is not a multiple of the {schema.itemsize} B record size"
        )
    with open(path, "rb") as fh:
        fh.seek(schema.start_position)
        return np.frombuffer(fh.read(), dtype=schema.dtype).copy()


class _BinaryRecordReader(RecordReader):
    def __init__(self, rows: np.ndarray) -> None:
        self.rows = rows

    def __iter__(self) -> Iterator[np.void]:
        return iter(self.rows)


class BinaryInputFormat(InputFormat):
    """Hadoop-style reader over a fixed-width binary file."""

    def __init__(self, path: PathLike, schema: RecordSchema) -> None:
        if schema.input_format != "binary":
            raise FormatError(f"schema {schema.id!r} is not a binary schema")
        self.path = os.fspath(path)
        self.schema = schema
        body = os.path.getsize(self.path) - schema.start_position
        if body < 0 or body % schema.itemsize != 0:
            raise FormatError(
                f"{self.path}: not a valid {schema.id!r} file "
                f"(body {body} B, record {schema.itemsize} B)"
            )
        self.num_records = body // schema.itemsize

    def get_splits(self, num_splits: int) -> list[InputSplit]:
        """Record-aligned byte ranges, one per mapper."""
        if num_splits < 1:
            raise FormatError(f"num_splits must be >= 1, got {num_splits!r}")
        base, extra = divmod(self.num_records, num_splits)
        splits = []
        record_start = 0
        for i in range(num_splits):
            count = base + (1 if i < extra else 0)
            splits.append(
                InputSplit(
                    source=self.path,
                    start=self.schema.start_position + record_start * self.schema.itemsize,
                    length=count * self.schema.itemsize,
                )
            )
            record_start += count
        return splits

    def get_record_reader(self, split: InputSplit) -> RecordReader:
        return _BinaryRecordReader(self.read_split(split))

    def read_split(self, split: InputSplit) -> np.ndarray:
        """The whole split as one structured array (the vectorized path)."""
        if split.length % self.schema.itemsize != 0:
            raise FormatError(
                f"split length {split.length} not aligned to record size {self.schema.itemsize}"
            )
        with open(self.path, "rb") as fh:
            fh.seek(split.start)
            raw = fh.read(split.length)
        return np.frombuffer(raw, dtype=self.schema.dtype).copy()


def partition_paths(output_path: PathLike, num_partitions: int) -> list[str]:
    """Per-partition output file names, mirroring Hadoop's ``part-00000`` style."""
    if num_partitions < 1:
        raise FormatError(f"num_partitions must be >= 1, got {num_partitions!r}")
    return [os.path.join(os.fspath(output_path), f"part-{i:05d}") for i in range(num_partitions)]


def write_partitions(
    output_path: PathLike,
    partitions: Sequence[np.ndarray],
    schema: RecordSchema,
    header: bytes = b"",
) -> list[str]:
    """Write one binary file per partition under ``output_path``."""
    os.makedirs(output_path, exist_ok=True)
    paths = partition_paths(output_path, len(partitions))
    for path, part in zip(paths, partitions):
        write_binary(path, np.asarray(part, dtype=schema.dtype), schema, header=header)
    return paths
