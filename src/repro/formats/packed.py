"""Packed record format and CSR/CSC compression (paper Section III-D).

The ``pack`` format operator turns a reducer's grouped output into *packed
entries*: all records sharing a group key stored as one entry.  The packed
layout is redundant — the group key (and any per-group add-on attribute, such
as the in-degree) repeats inside every record of the group.  The paper's
"Data Compression" optimization stores the redundant key column in a
Compressed Sparse Column (CSC) layout instead: one key per group plus an
offsets array, while the *value array is deliberately left uncompressed*
("the value array may include different values ... we do not compress the
value array to keep the generality").

``PackedRecords`` is the uncompressed packed format; ``CSCBlock`` is its
compressed form.  Both round-trip losslessly, and both report ``nbytes`` so
the communication saving can be measured (the paper observed up to 13% on
its graph datasets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import FormatError
from repro.formats.records import RecordSchema


def _schema_without(schema: RecordSchema, field: str) -> np.dtype:
    """Structured dtype of a record with ``field`` removed."""
    return np.dtype([(f.name, f.numpy_dtype) for f in schema.fields if f.name != field])


@dataclass
class PackedRecords:
    """Grouped records in the (uncompressed) packed format.

    ``groups`` maps group key -> structured array of *full* records, each
    still carrying the redundant key field.
    """

    schema: RecordSchema
    key_field: str
    groups: list[tuple[Any, np.ndarray]]

    def __post_init__(self) -> None:
        if not self.schema.has_field(self.key_field):
            raise FormatError(
                f"key field {self.key_field!r} not in schema {self.schema.id!r}"
            )
        for key, rows in self.groups:
            if len(rows) and not np.all(rows[self.key_field] == key):
                raise FormatError(
                    f"packed group {key!r} contains records with a different key"
                )

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def num_records(self) -> int:
        return sum(len(rows) for _, rows in self.groups)

    @property
    def nbytes(self) -> int:
        """Wire size of the packed representation (full records, keys repeated)."""
        return sum(rows.nbytes for _, rows in self.groups)

    def unpack(self) -> np.ndarray:
        """Back to a flat record array (the ``unpack`` format operator)."""
        if not self.groups:
            return np.empty(0, dtype=self.schema.dtype)
        return np.concatenate([rows for _, rows in self.groups])

    def to_csc(self) -> "CSCBlock":
        """Compress: store each group key once, keep value columns verbatim."""
        keys = np.array([k for k, _ in self.groups])
        counts = np.array([len(rows) for _, rows in self.groups], dtype=np.int64)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        other_dtype = _schema_without(self.schema, self.key_field)
        flat = np.empty(int(counts.sum()), dtype=other_dtype)
        pos = 0
        for _, rows in self.groups:
            for name in other_dtype.names:
                flat[name][pos : pos + len(rows)] = rows[name]
            pos += len(rows)
        return CSCBlock(
            schema=self.schema, key_field=self.key_field, keys=keys, indptr=indptr, values=flat
        )


@dataclass
class CSCBlock:
    """CSC-compressed packed records.

    Mirrors the paper's example ``{0, {2, 3, 4, 5}, {4, 4, 4, 4}}``: a start
    pointer (generalized here to the full ``indptr`` offsets array), the
    per-record value columns, and the group keys stored once each.
    """

    schema: RecordSchema
    key_field: str
    keys: np.ndarray
    indptr: np.ndarray
    values: np.ndarray  # structured array of non-key columns, uncompressed

    def __post_init__(self) -> None:
        if len(self.indptr) != len(self.keys) + 1:
            raise FormatError(
                f"indptr must have {len(self.keys) + 1} entries, got {len(self.indptr)}"
            )
        if len(self.values) != (self.indptr[-1] if len(self.indptr) else 0):
            raise FormatError("values length does not match indptr[-1]")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")

    @property
    def num_groups(self) -> int:
        return len(self.keys)

    @property
    def num_records(self) -> int:
        return len(self.values)

    @property
    def nbytes(self) -> int:
        """Wire size of the compressed representation."""
        return self.keys.nbytes + self.indptr.nbytes + self.values.nbytes

    def to_packed(self) -> PackedRecords:
        """Decompress back to the packed format (lossless round trip)."""
        groups = []
        key_dtype = self.schema.dtype[self.key_field]
        for i, key in enumerate(self.keys):
            lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
            rows = np.empty(hi - lo, dtype=self.schema.dtype)
            rows[self.key_field] = np.asarray(key).astype(key_dtype)
            for name in self.values.dtype.names:
                rows[name] = self.values[name][lo:hi]
            groups.append((key, rows))
        return PackedRecords(schema=self.schema, key_field=self.key_field, groups=groups)


def pack(records: np.ndarray, schema: RecordSchema, key_field: str) -> PackedRecords:
    """The ``pack`` format operator: group a record array by ``key_field``.

    Groups appear in ascending key order (the deterministic order reducers
    produce after a keyed shuffle).
    """
    if records.dtype != schema.dtype:
        raise FormatError(
            f"records dtype {records.dtype} does not match schema {schema.id!r}"
        )
    if not schema.has_field(key_field):
        raise FormatError(f"key field {key_field!r} not in schema {schema.id!r}")
    order = np.argsort(records[key_field], kind="stable")
    ordered = records[order]
    keys, starts = np.unique(ordered[key_field], return_index=True)
    bounds = np.concatenate((starts, [len(ordered)]))
    # groups are views into the freshly gathered `ordered` array — no
    # per-group copies, which matters when a graph has 10^5 vertices
    groups = [
        (keys[i], ordered[bounds[i] : bounds[i + 1]]) for i in range(len(keys))
    ]
    return PackedRecords(schema=schema, key_field=key_field, groups=groups)


def unpack(packed: PackedRecords) -> np.ndarray:
    """The ``unpack`` format operator (module-level convenience)."""
    return packed.unpack()


def compression_ratio(packed: PackedRecords) -> float:
    """Fraction of bytes saved by CSC compression: ``1 - csc/packed``."""
    base = packed.nbytes
    if base == 0:
        return 0.0
    return 1.0 - packed.to_csc().nbytes / base
