"""Record formats: schemas, binary / text readers-writers, packed + CSC.

This package is the runtime behind PaPar's *input-data configuration file*
interface (paper Section III-A): a schema describes one element of the input
(Figures 4 and 5), and the format readers implement the Hadoop
``InputFormat`` contract over it so mappers read their own slices.
"""

from repro.formats.binary import (
    BinaryInputFormat,
    read_binary,
    write_binary,
    write_partitions,
)
from repro.formats.packed import CSCBlock, PackedRecords, compression_ratio, pack, unpack
from repro.formats.records import (
    BLAST_INDEX_SCHEMA,
    EDGE_LIST_SCHEMA,
    Field,
    RecordSchema,
)
from repro.formats.text import (
    ByteRangeTextInputFormat,
    TextInputFormat,
    read_text,
    read_text_array,
    write_text,
)

__all__ = [
    "Field",
    "RecordSchema",
    "BLAST_INDEX_SCHEMA",
    "EDGE_LIST_SCHEMA",
    "BinaryInputFormat",
    "TextInputFormat",
    "ByteRangeTextInputFormat",
    "read_binary",
    "write_binary",
    "write_partitions",
    "read_text",
    "read_text_array",
    "write_text",
    "PackedRecords",
    "CSCBlock",
    "pack",
    "unpack",
    "compression_ratio",
]
