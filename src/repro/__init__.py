"""PaPar — a parallel data partitioning framework for big data applications.

This package reproduces the system described in

    Wang, Zhang, Zhang, Pumma, Feng.
    "PaPar: A Parallel Data Partitioning Framework for Big Data Applications."
    IPDPS 2017.

Layout
------
``repro.mpi``
    A pure-Python, thread-based SPMD MPI runtime (the paper ran on MVAPICH2;
    see DESIGN.md for the substitution argument).
``repro.cluster``
    Virtual-time cluster cost model (nodes, Ethernet vs InfiniBand networks).
``repro.mapreduce``
    An MR-MPI-style MapReduce engine running on ``repro.mpi``.
``repro.config`` / ``repro.formats``
    The two user-facing configuration files (input-data format and workflow)
    and the record formats they describe.
``repro.ops`` / ``repro.policies``
    The operator building blocks (Table I of the paper) and distribution
    policies formalized as stride-permutation matrices.
``repro.core``
    The PaPar framework facade: parse configs, plan jobs, generate code,
    and execute partitioning workflows.
``repro.blast`` / ``repro.graph``
    The two driving applications: muBLASTP database partitioning and
    PowerLyra-style graph partitioning (edge-cut / vertex-cut / hybrid-cut).
"""

from repro._version import __version__
from repro.core.framework import PaPar

__all__ = ["PaPar", "__version__"]
