"""Bounded retries with exponential backoff and deterministic jitter.

Backoff is charged to the *virtual* clock of the next attempt (its per-rank
clocks start at the accumulated backoff time), so recovery cost shows up in
the simulated makespan exactly like a real re-submission delay would —
without sleeping any wall-clock time.  The one exception is the process
backend's gang-restart (``execute_with_recovery(wall_clock=True)``), where
workers really died and the same delays are slept for real.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import FaultToleranceError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-run a failed execution, and how long to wait."""

    #: total attempts, including the first (1 = no retries)
    max_attempts: int = 5
    #: virtual seconds of backoff after the first failure
    base_delay_s: float = 0.1
    #: backoff ceiling (virtual seconds)
    max_delay_s: float = 30.0
    #: exponential growth factor per failed attempt
    backoff_factor: float = 2.0
    #: jitter amplitude as a fraction of the raw delay (0 = none)
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultToleranceError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise FaultToleranceError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise FaultToleranceError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if not (0.0 <= self.jitter <= 1.0):
            raise FaultToleranceError(f"jitter must be in [0, 1], got {self.jitter!r}")

    def should_retry(self, attempt: int) -> bool:
        """True when attempt number ``attempt`` (1-based) may be followed."""
        return attempt < self.max_attempts

    def delay_s(self, attempt: int, seed: int = 0) -> float:
        """Virtual backoff after failed attempt ``attempt`` (1-based).

        Deterministic for a given ``(policy, attempt, seed)``: the jitter
        draw is keyed, not sampled from global state.
        """
        raw = min(
            self.base_delay_s * self.backoff_factor ** (attempt - 1), self.max_delay_s
        )
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        u = random.Random(f"papar-backoff:{seed}:{attempt}").random()
        return raw * (1.0 + self.jitter * u)


__all__ = ["RetryPolicy"]
