"""Per-job checkpointing of workflow outputs.

After each planned job completes, every rank snapshots its local output
(plus its virtual clock) under a key derived from the plan, the input data,
the rank count, and the job.  On retry, the driver computes the longest
*fully committed* job prefix — jobs for which **all** ranks saved a
checkpoint — and every rank of the next attempt resumes from there, loading
the saved outputs instead of recomputing (and re-shuffling) them.

Commit is per-rank and non-atomic on purpose: a rank that crashes *after*
running a job but *before* saving leaves that job uncommitted, so the next
attempt deterministically re-runs it on all ranks — the collective schedules
of the attempt stay aligned.

Two stores are provided: :class:`MemoryCheckpointStore` (values round-trip
through pickle, so later mutation of a live object cannot corrupt the
snapshot) and :class:`DiskCheckpointStore` (one file per key, fsynced and
atomically renamed into place, with a crc-verified footer so a torn file —
a writer killed mid-``write`` or a machine crash before the rename — is
detected on load and treated as *missing*, never as committed).  Only the
disk store is ``process_safe``: its state survives the fork boundary, so
it is the one :class:`~repro.core.process_runtime.ProcessRuntime` accepts
for gang-restart.
"""

from __future__ import annotations

import os
import pickle
import threading
import urllib.parse
import zlib
from typing import Any, Iterable

from repro.errors import FaultToleranceError

#: trailing magic of a fully committed checkpoint file (format version 1)
_FOOTER_MAGIC = b"PaParCk1"
#: footer = crc32(blob) little-endian u32 + magic
_FOOTER_LEN = 4 + len(_FOOTER_MAGIC)


class CheckpointStore:
    """Interface: a key/value store for job-output snapshots."""

    #: whether snapshots are visible across a fork/process boundary
    process_safe = False

    def save(self, key: str, value: Any) -> None:
        """Persist ``value`` under ``key``, overwriting any prior snapshot."""
        raise NotImplementedError

    def load(self, key: str) -> Any:
        """Return the snapshot under ``key``; FaultToleranceError if absent."""
        raise NotImplementedError

    def contains(self, key: str) -> bool:
        """Whether a snapshot exists under ``key``."""
        raise NotImplementedError

    def keys(self) -> list[str]:
        """All stored keys, sorted."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every stored snapshot."""
        raise NotImplementedError

    def delete(self, key: str) -> None:
        """Drop the snapshot under ``key``; absent keys are a no-op.

        Retention callers (the serve snapshot store pruning superseded
        generations) need single-key removal without :meth:`clear`'s
        drop-everything semantics.
        """
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return len(self.keys())


class MemoryCheckpointStore(CheckpointStore):
    """In-memory store; snapshots are isolated via a pickle round-trip."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[str, bytes] = {}

    def save(self, key: str, value: Any) -> None:
        """Pickle ``value`` into the in-memory map under ``key``."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._data[key] = blob

    def load(self, key: str) -> Any:
        """Unpickle the snapshot under ``key``; error if absent."""
        with self._lock:
            try:
                blob = self._data[key]
            except KeyError:
                raise FaultToleranceError(f"no checkpoint under key {key!r}") from None
        return pickle.loads(blob)

    def contains(self, key: str) -> bool:
        """Whether a snapshot exists under ``key``."""
        with self._lock:
            return key in self._data

    def keys(self) -> list[str]:
        """All stored keys, sorted."""
        with self._lock:
            return sorted(self._data)

    def clear(self) -> None:
        """Drop every stored snapshot."""
        with self._lock:
            self._data.clear()

    def delete(self, key: str) -> None:
        """Drop the snapshot under ``key``; absent keys are a no-op."""
        with self._lock:
            self._data.pop(key, None)

    @property
    def nbytes(self) -> int:
        """Total pickled size of the stored snapshots."""
        with self._lock:
            return sum(len(b) for b in self._data.values())


class DiskCheckpointStore(CheckpointStore):
    """One pickle file per key under ``directory``; crash-safe commits.

    A commit is temp file → ``flush`` → ``fsync`` → atomic ``os.replace``,
    and the file ends in a crc32-verified footer.  A torn file (writer
    killed mid-write, power loss before the rename made it durable) fails
    the footer check and is treated as *missing* — the committed-prefix
    rule then re-runs that job instead of restoring garbage.

    Keys are percent-encoded into filenames so they round-trip losslessly
    through :meth:`keys`.
    """

    _SUFFIX = ".ckpt"

    #: snapshots live on disk, so forked worker processes share them
    process_safe = True

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(
            self.directory, urllib.parse.quote(key, safe="") + self._SUFFIX
        )

    def save(self, key: str, value: Any) -> None:
        """Commit ``value``: temp file, fsync, footer, atomic rename."""
        path = self._path(key)
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.write(zlib.crc32(blob).to_bytes(4, "little"))
            fh.write(_FOOTER_MAGIC)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _read_committed(self, key: str) -> bytes | None:
        """The pickled blob under ``key``, or ``None`` if absent or torn."""
        try:
            with open(self._path(key), "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return None
        if len(raw) < _FOOTER_LEN or raw[-len(_FOOTER_MAGIC):] != _FOOTER_MAGIC:
            return None
        blob = raw[:-_FOOTER_LEN]
        if zlib.crc32(blob) != int.from_bytes(raw[-_FOOTER_LEN:-len(_FOOTER_MAGIC)], "little"):
            return None
        return blob

    def load(self, key: str) -> Any:
        """Unpickle the snapshot under ``key``; torn files count as absent."""
        blob = self._read_committed(key)
        if blob is None:
            raise FaultToleranceError(f"no checkpoint under key {key!r}") from None
        return pickle.loads(blob)

    def contains(self, key: str) -> bool:
        """Whether a *committed* (footer-verified) snapshot exists."""
        return self._read_committed(key) is not None

    def keys(self) -> list[str]:
        """All stored keys (decoded from their filenames), sorted."""
        names = []
        for name in os.listdir(self.directory):
            if name.endswith(self._SUFFIX):
                names.append(urllib.parse.unquote(name[: -len(self._SUFFIX)]))
        return sorted(names)

    def clear(self) -> None:
        """Delete every checkpoint file in the directory."""
        for name in os.listdir(self.directory):
            if name.endswith(self._SUFFIX):
                os.unlink(os.path.join(self.directory, name))

    def delete(self, key: str) -> None:
        """Remove the file under ``key``; absent keys are a no-op."""
        try:
            os.unlink(self._path(key))
        except FileNotFoundError:
            pass


# -- key derivation ------------------------------------------------------------


def plan_fingerprint(plan: Any, input_data: Any, size: int) -> str:
    """A key prefix binding checkpoints to (plan, input, rank count).

    Resuming is only sound when all three match, so they are baked into
    every key; a different input file or rank count starts from scratch.
    """
    return (
        f"{plan.workflow_id}/{len(plan.jobs)}jobs/{size}ranks/"
        f"{input_data.num_records}rec-{input_data.nbytes}B"
    )


def job_key(fingerprint: str, job_index: int, op_id: str, rank: int) -> str:
    """The store key for one rank's output of one planned job."""
    return f"{fingerprint}/job{job_index}-{op_id}/rank{rank}"


def committed_prefix(
    store: CheckpointStore, fingerprint: str, jobs: Iterable[Any], size: int
) -> int:
    """Number of leading jobs for which *every* rank has a checkpoint."""
    jobs = list(jobs)
    for i, job in enumerate(jobs):
        keys = (job_key(fingerprint, i, job.op_id, r) for r in range(size))
        if not all(store.contains(k) for k in keys):
            return i
    return len(jobs)


__all__ = [
    "CheckpointStore",
    "DiskCheckpointStore",
    "MemoryCheckpointStore",
    "committed_prefix",
    "job_key",
    "plan_fingerprint",
]
