"""The shared recovery loop wrapped around a runtime's SPMD attempts.

Both :class:`~repro.core.runtime.MPIRuntime` and
:class:`~repro.core.mr_runtime.MapReduceRuntime` execute a plan as one
``run_mpi`` call; this module retries that call under a
:class:`~repro.fault.retry.RetryPolicy`, resuming each attempt from the
checkpoint store's committed job prefix and accumulating the fault report
that lands in ``PartitionResult.extra["fault"]``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import FaultToleranceError, MPIError
from repro.fault.checkpoint import CheckpointStore, committed_prefix
from repro.fault.injector import FaultInjector
from repro.fault.retry import RetryPolicy

#: ``attempt_fn(resume_index, start_time_s) -> result`` — one SPMD attempt,
#: resuming after the first ``resume_index`` jobs with per-rank virtual
#: clocks starting at ``start_time_s``.
AttemptFn = Callable[[int, float], Any]


def execute_with_recovery(
    attempt_fn: AttemptFn,
    *,
    plan: Any,
    fingerprint: str,
    size: int,
    store: Optional[CheckpointStore] = None,
    retry: Optional[RetryPolicy] = None,
    injector: Optional[FaultInjector] = None,
    seed: int = 0,
    recorder: Optional[Any] = None,
) -> tuple[Any, dict[str, Any]]:
    """Run ``attempt_fn`` until it survives; return ``(result, fault_report)``.

    Only :class:`~repro.errors.MPIError` failures (aborts, deadlocks,
    injected faults, corruption) are retried — programming errors propagate
    unchanged on the first attempt.
    """
    retry = retry or RetryPolicy()
    attempts = 0
    backoff_total = 0.0
    failures: list[str] = []
    recovered_jobs: list[str] = []
    while True:
        attempts += 1
        resume = (
            committed_prefix(store, fingerprint, plan.jobs, size)
            if store is not None
            else 0
        )
        if injector is not None:
            injector.begin_attempt()
        try:
            result = attempt_fn(resume, backoff_total)
        except MPIError as exc:
            failures.append(f"attempt {attempts}: {exc!r}")
            if recorder is not None:
                recorder.instant(
                    f"attempt {attempts} failed: {exc}", category="retry",
                    attrs={"attempt": attempts},
                )
            if not retry.should_retry(attempts):
                raise FaultToleranceError(
                    f"workflow {plan.workflow_id!r} still failing after "
                    f"{attempts} attempt(s); failures: {failures}"
                ) from exc
            backoff_total += retry.delay_s(attempts, seed=seed)
            continue
        if resume:
            recovered_jobs = [job.op_id for job in plan.jobs[:resume]]
        report: dict[str, Any] = {
            "attempts": attempts,
            "recovered_jobs": recovered_jobs,
            "backoff_virtual_s": backoff_total,
            "failures": failures,
        }
        if injector is not None:
            report["injected"] = injector.summary()
        return result, report


__all__ = ["execute_with_recovery"]
