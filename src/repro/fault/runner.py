"""The shared recovery loop wrapped around a runtime's SPMD attempts.

Both :class:`~repro.core.runtime.MPIRuntime` and
:class:`~repro.core.mr_runtime.MapReduceRuntime` execute a plan as one
``run_mpi`` call; this module retries that call under a
:class:`~repro.fault.retry.RetryPolicy`, resuming each attempt from the
checkpoint store's committed job prefix and accumulating the fault report
that lands in ``PartitionResult.extra["fault"]``.

The same loop drives the process backend's gang-restart
(:class:`~repro.core.process_runtime.ProcessRuntime`): there real workers
really die, so ``wall_clock=True`` makes the backoff an actual
``time.sleep`` (reported as ``backoff_wall_s``) instead of a virtual-clock
charge, and every classified :class:`~repro.errors.WorkerCrash` lands in
the report's ``crashes`` list.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.errors import FaultToleranceError, MPIError, WorkerCrash
from repro.fault.checkpoint import CheckpointStore, committed_prefix
from repro.fault.injector import FaultInjector
from repro.fault.retry import RetryPolicy

#: ``attempt_fn(resume_index, start_time_s) -> result`` — one SPMD attempt,
#: resuming after the first ``resume_index`` jobs with per-rank virtual
#: clocks starting at ``start_time_s``.
AttemptFn = Callable[[int, float], Any]


def execute_with_recovery(
    attempt_fn: AttemptFn,
    *,
    plan: Any,
    fingerprint: str,
    size: int,
    store: Optional[CheckpointStore] = None,
    retry: Optional[RetryPolicy] = None,
    injector: Optional[FaultInjector] = None,
    seed: int = 0,
    recorder: Optional[Any] = None,
    wall_clock: bool = False,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[Any, dict[str, Any]]:
    """Run ``attempt_fn`` until it survives; return ``(result, fault_report)``.

    Only :class:`~repro.errors.MPIError` failures (aborts, deadlocks,
    injected faults, worker crashes, corruption) are retried — programming
    errors propagate unchanged on the first attempt.

    With ``wall_clock=True`` (the process backend's gang-restart) the
    retry backoff is slept for real via ``sleep`` and reported as
    ``backoff_wall_s``; otherwise it is charged to the virtual clock as
    ``backoff_virtual_s``.
    """
    retry = retry or RetryPolicy()
    attempts = 0
    backoff_total = 0.0
    failures: list[str] = []
    recovered_jobs: list[str] = []
    crashes: list[dict[str, Any]] = []
    while True:
        attempts += 1
        resume = (
            committed_prefix(store, fingerprint, plan.jobs, size)
            if store is not None
            else 0
        )
        if injector is not None:
            injector.begin_attempt()
        try:
            result = attempt_fn(resume, 0.0 if wall_clock else backoff_total)
        except MPIError as exc:
            failures.append(f"attempt {attempts}: {exc!r}")
            if isinstance(exc, WorkerCrash):
                crash = exc.as_report()
                crash["attempt"] = attempts
                crashes.append(crash)
            if recorder is not None:
                if isinstance(exc, WorkerCrash):
                    recorder.instant(
                        f"worker crash: {exc}", category="crash",
                        attrs={"attempt": attempts, "rank": exc.rank, "kind": exc.kind},
                    )
                recorder.instant(
                    f"attempt {attempts} failed: {exc}", category="retry",
                    attrs={"attempt": attempts},
                )
            if not retry.should_retry(attempts):
                raise FaultToleranceError(
                    f"workflow {plan.workflow_id!r} still failing after "
                    f"{attempts} attempt(s); failures: {failures}"
                ) from exc
            delay = retry.delay_s(attempts, seed=seed)
            backoff_total += delay
            if recorder is not None:
                recorder.count("fault.restarts", 1)
                recorder.instant(
                    f"restart: attempt {attempts + 1} after {delay:.3f}s backoff",
                    category="restart", attrs={"attempt": attempts + 1},
                )
            if wall_clock:
                sleep(delay)
            continue
        if resume:
            recovered_jobs = [job.op_id for job in plan.jobs[:resume]]
        report: dict[str, Any] = {
            "attempts": attempts,
            "recovered_jobs": recovered_jobs,
            "backoff_virtual_s": 0.0 if wall_clock else backoff_total,
            "failures": failures,
        }
        if wall_clock:
            report["backoff_wall_s"] = backoff_total
        if crashes:
            report["crashes"] = crashes
        if injector is not None:
            report["injected"] = injector.summary()
        return result, report


__all__ = ["execute_with_recovery"]
