"""Fault injection, checkpoint/restart, and retry for the simulated cluster.

The paper motivates PaPar against runtime skew/straggler mechanisms (Hadoop
speculative execution, LATE, Mantri); this package supplies the matching
*failure* side of the runtime so recovery cost — not just throughput — can
be studied on the simulator:

* :class:`FaultSchedule` / :class:`FaultSpec` — declarative fault plans
  (rank crashes around job *k*, per-link message drop / duplicate / delay /
  corruption, slow-rank stragglers), parseable from CLI strings and
  generatable from a chaos seed.
* :class:`FaultInjector` — the deterministic, seeded engine that fires a
  schedule: hooked into :meth:`repro.mpi.fabric.Fabric.deliver`, the
  per-rank virtual clocks, and the runtimes' per-job boundaries.
* :class:`MemoryCheckpointStore` / :class:`DiskCheckpointStore` — per-job,
  per-rank snapshots of workflow outputs so a failed run resumes from the
  last fully-committed job instead of starting over.
* :class:`RetryPolicy` + :func:`execute_with_recovery` — bounded retries
  with exponential backoff and deterministic jitter, charged to the
  *virtual* clock of the next attempt — or, on the process backend's
  gang-restart (``wall_clock=True``), slept for real and reported as
  ``backoff_wall_s`` alongside the classified
  :class:`~repro.errors.WorkerCrash` reports.

Fault-free runs pay nothing: every hook is behind an ``injector is None``
check and the runtimes bypass the recovery loop entirely when no fault
tolerance was configured.
"""

from repro.fault.checkpoint import (
    CheckpointStore,
    DiskCheckpointStore,
    MemoryCheckpointStore,
    committed_prefix,
    job_key,
    plan_fingerprint,
)
from repro.fault.injector import FaultInjector
from repro.fault.retry import RetryPolicy
from repro.fault.runner import execute_with_recovery
from repro.fault.schedule import FaultSchedule, FaultSpec, parse_fault_spec

__all__ = [
    "CheckpointStore",
    "DiskCheckpointStore",
    "MemoryCheckpointStore",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "RetryPolicy",
    "committed_prefix",
    "execute_with_recovery",
    "job_key",
    "parse_fault_spec",
    "plan_fingerprint",
]
