"""The deterministic, seeded fault-injection engine.

One :class:`FaultInjector` drives one :class:`~repro.fault.schedule.FaultSchedule`
through a whole fault-tolerant execution, *including* its retry attempts:
firing caps (``FaultSpec.times``) persist across attempts so a bounded retry
loop always converges, while the per-message random draws are re-keyed per
attempt so a retried run is not doomed to replay the same probabilistic
faults.

Determinism: every decision is a pure function of
``(seed, spec index, attempt, link, per-link message index)``.  Message
order on one link is the sender's program order, so the decision sequence
does not depend on thread scheduling.

Hook points (all no-ops when the runtime has no injector):

* :meth:`on_deliver` — called by :meth:`repro.mpi.fabric.Fabric.deliver`
  for every message; returns the list of copies to deposit (possibly
  empty for a drop, two for a duplicate) with timestamps delayed and
  payload/checksum corrupted as scheduled.
* :meth:`check_crash` — called by the runtimes at each job boundary;
  raises :class:`~repro.errors.InjectedFault` when a crash is due.
* :meth:`scale_compute` — called by
  :meth:`repro.mpi.comm.Communicator.charge_compute`; stretches a
  straggler rank's virtual compute time.
"""

from __future__ import annotations

import itertools
import random
import threading
import zlib
from dataclasses import replace as _dc_replace
from typing import Any

from repro.errors import InjectedFault
from repro.fault.schedule import FaultSchedule, FaultSpec


def _payload_bytes(payload: Any) -> bytes:
    """Raw bytes of a message payload (pickled bytes or numpy buffer)."""
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    tobytes = getattr(payload, "tobytes", None)
    if tobytes is not None:
        return tobytes()
    return repr(payload).encode()


def checksum_of(payload: Any) -> int:
    """The transport checksum the fabric verifies on receive."""
    return zlib.crc32(_payload_bytes(payload))


class FaultInjector:
    """Fires a :class:`FaultSchedule` deterministically from a seed."""

    def __init__(self, schedule: FaultSchedule, seed: int = 0) -> None:
        self.schedule = schedule
        self.seed = seed
        self._lock = threading.Lock()
        #: spec index -> number of firings so far (across all attempts)
        self._fired: dict[int, int] = {}
        #: (src, dst) -> messages seen on the link this attempt
        self._link_counts: dict[tuple[int, int], int] = {}
        #: transport-level sequence numbers (for duplicate suppression)
        self._seq = itertools.count(1)
        self.attempt = 0
        #: kind -> total firings (plus ``duplicates_suppressed`` from the fabric)
        self.counts: dict[str, int] = {}
        #: human-readable log of fired faults, in firing order
        self.fired_log: list[str] = []
        # cache straggler factors per rank: they apply continuously, not per-event
        self._straggler_factor: dict[int, float] = {}
        for _, spec in schedule.straggler_specs:
            if spec.rank is None:
                continue
            self._straggler_factor[spec.rank] = (
                self._straggler_factor.get(spec.rank, 1.0) * spec.factor
            )

    # -- bookkeeping ---------------------------------------------------------

    def begin_attempt(self) -> int:
        """Start a new execution attempt; resets the per-link draw streams."""
        with self._lock:
            self.attempt += 1
            self._link_counts.clear()
            return self.attempt

    def _exhausted(self, index: int, spec: FaultSpec) -> bool:
        return spec.times > 0 and self._fired.get(index, 0) >= spec.times

    def _fire(self, index: int, spec: FaultSpec, detail: str) -> None:
        self._fired[index] = self._fired.get(index, 0) + 1
        self.counts[spec.kind] = self.counts.get(spec.kind, 0) + 1
        self.fired_log.append(f"attempt {self.attempt}: {spec.kind} {detail}")

    def _roll(self, index: int, src: int, dst: int, count: int) -> float:
        """Deterministic uniform draw for one (spec, link, message) decision."""
        key = f"papar-fault:{self.seed}:{index}:{self.attempt}:{src}:{dst}:{count}"
        return random.Random(key).random()

    def count_suppressed_duplicate(self) -> None:
        """The fabric's dedup layer dropped a duplicated copy."""
        with self._lock:
            self.counts["duplicates_suppressed"] = (
                self.counts.get("duplicates_suppressed", 0) + 1
            )

    def summary(self) -> dict[str, Any]:
        """Counters plus the firing log, for ``PartitionResult.extra['fault']``."""
        with self._lock:
            return {
                "seed": self.seed,
                "attempts": self.attempt,
                "counts": dict(self.counts),
                "fired": list(self.fired_log),
            }

    # -- fabric hook: message faults -------------------------------------------

    def on_deliver(self, src: int, dst: int, msg: Any) -> list[Any]:
        """Decide the fate of one message; returns the copies to deposit.

        ``msg`` is a :class:`repro.mpi.fabric.Message`; the injector assigns
        its transport sequence number and may drop it, duplicate it, delay
        its virtual timestamp, or corrupt its payload (recording the honest
        checksum so the receiver detects the damage).
        """
        with self._lock:
            count = self._link_counts.get((src, dst), 0)
            self._link_counts[(src, dst)] = count + 1
            msg.seq = next(self._seq)
            deliveries = [msg]
            for index, spec in self.schedule.message_specs:
                if not spec.matches_link(src, dst):
                    continue
                if self._exhausted(index, spec):
                    continue
                if self._roll(index, src, dst, count) >= spec.probability:
                    continue
                detail = f"link {src}->{dst} tag {msg.tag} (message #{count})"
                if spec.kind == "drop":
                    self._fire(index, spec, detail)
                    return []
                if spec.kind == "duplicate":
                    self._fire(index, spec, detail)
                    deliveries.append(_dc_replace(msg))
                elif spec.kind == "delay":
                    self._fire(index, spec, f"{detail} +{spec.delay_s}s")
                    msg.timestamp += spec.delay_s
                elif spec.kind == "corrupt":
                    self._fire(index, spec, detail)
                    self._corrupt(msg)
            return deliveries

    @staticmethod
    def _corrupt(msg: Any) -> None:
        """Damage the payload; keep the honest checksum so receive detects it."""
        msg.checksum = checksum_of(msg.payload)
        if isinstance(msg.payload, (bytes, bytearray)) and len(msg.payload) > 0:
            damaged = bytearray(msg.payload)
            damaged[len(damaged) // 2] ^= 0xFF
            msg.payload = bytes(damaged)
        else:
            # numpy buffers: poison the checksum instead of flipping raw
            # bytes (structured dtypes don't always reinterpret cleanly)
            msg.checksum ^= 0xA5A5A5A5

    # -- runtime hook: rank crashes ---------------------------------------------

    def check_crash(self, rank: int, job_index: int, when: str) -> None:
        """Raise :class:`InjectedFault` if a crash is scheduled here."""
        with self._lock:
            for index, spec in self.schedule.crash_specs:
                if spec.rank is not None and spec.rank != rank:
                    continue
                if (spec.job if spec.job is not None else 0) != job_index:
                    continue
                if spec.when != when:
                    continue
                if self._exhausted(index, spec):
                    continue
                detail = f"rank {rank} {when} job {job_index}"
                self._fire(index, spec, detail)
                raise InjectedFault(f"injected crash: {detail}")

    # -- clock hook: stragglers ---------------------------------------------------

    def scale_compute(self, rank: int, seconds: float) -> float:
        """Stretch a straggler rank's virtual compute time."""
        factor = self._straggler_factor.get(rank)
        if factor is None:
            return seconds
        return seconds * factor

    @property
    def straggler_ranks(self) -> dict[int, float]:
        """Rank -> cumulative slowdown factor for the scheduled stragglers."""
        return dict(self._straggler_factor)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(seed={self.seed}, attempt={self.attempt}, "
            f"specs={len(self.schedule)}, fired={sum(self._fired.values())})"
        )


__all__ = ["FaultInjector", "checksum_of"]
