"""Declarative fault schedules.

A :class:`FaultSchedule` is an ordered collection of :class:`FaultSpec`
entries.  Each spec names one fault *kind* plus its targeting parameters:

========== ======================================================================
kind        meaning
========== ======================================================================
crash       rank ``rank`` raises :class:`~repro.errors.InjectedFault`
            ``when`` (``before``/``after``) job ``job`` commits
drop        a message on link ``src -> dst`` vanishes (receiver deadlocks
            until the fabric's ``deadlock_grace`` fires a DeadlockError)
duplicate   a message is delivered twice; the transport's sequence-number
            dedup suppresses the second copy
delay       a message's virtual arrival time slips by ``delay_s`` seconds
corrupt     a message's payload fails its transport checksum on receive
straggler   rank ``rank``'s compute is slowed by ``factor`` (virtual time)
========== ======================================================================

``probability`` gates message faults per message (1.0 = the first matching
message), ``times`` caps total firings across all retry attempts (default 1,
``0`` = unlimited) so that bounded retries always converge on a surviving
run.  Specs are parseable from compact CLI strings, e.g.::

    crash:rank=1,job=0,when=after
    drop:src=0,dst=2,p=0.5,times=2
    delay:p=0.1,seconds=0.25
    straggler:rank=3,factor=4
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence, Union

from repro.errors import FaultToleranceError

#: fault kinds that act on individual messages in the fabric
MESSAGE_KINDS = ("drop", "duplicate", "delay", "corrupt")
#: all recognised fault kinds
KINDS = ("crash",) + MESSAGE_KINDS + ("straggler",)


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject; see the module docstring for the kinds."""

    kind: str
    #: target rank for ``crash``/``straggler`` (``None`` = any rank)
    rank: Optional[int] = None
    #: job index a ``crash`` is anchored to (``None`` = job 0)
    job: Optional[int] = None
    #: ``before`` or ``after`` the job for ``crash`` faults
    when: str = "before"
    #: source rank filter for message faults (``None`` = any)
    src: Optional[int] = None
    #: destination rank filter for message faults (``None`` = any)
    dst: Optional[int] = None
    #: per-message firing probability for message faults
    probability: float = 1.0
    #: virtual seconds added by a ``delay`` fault
    delay_s: float = 0.05
    #: compute slowdown multiplier for ``straggler`` faults
    factor: float = 2.0
    #: max firings across the whole run including retries (0 = unlimited)
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultToleranceError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.when not in ("before", "after"):
            raise FaultToleranceError(
                f"crash 'when' must be 'before' or 'after', got {self.when!r}"
            )
        if not (0.0 <= self.probability <= 1.0):
            raise FaultToleranceError(
                f"fault probability must be in [0, 1], got {self.probability!r}"
            )
        if self.times < 0:
            raise FaultToleranceError(f"fault times must be >= 0, got {self.times!r}")
        if self.factor <= 0:
            raise FaultToleranceError(f"straggler factor must be > 0, got {self.factor!r}")

    @property
    def is_message_fault(self) -> bool:
        """Whether this fault fires at the fabric (drop/duplicate/delay/corrupt)."""
        return self.kind in MESSAGE_KINDS

    def matches_link(self, src: int, dst: int) -> bool:
        """True when this message fault applies to the ``src -> dst`` link."""
        if not self.is_message_fault:
            return False
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


_SPEC_FIELD_ALIASES = {
    "p": "probability",
    "prob": "probability",
    "seconds": "delay_s",
    "delay": "delay_s",
}
_INT_FIELDS = {"rank", "job", "src", "dst", "times"}
_FLOAT_FIELDS = {"probability", "delay_s", "factor"}


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse one compact spec string, e.g. ``"drop:src=0,dst=1,p=0.5"``."""
    text = text.strip()
    kind, _, rest = text.partition(":")
    kind = kind.strip().lower()
    if kind not in KINDS:
        raise FaultToleranceError(
            f"unknown fault kind in {text!r}; expected one of {KINDS}"
        )
    fields: dict[str, object] = {}
    if rest.strip():
        for item in rest.split(","):
            if "=" not in item:
                raise FaultToleranceError(
                    f"fault spec field {item!r} in {text!r} must look like name=value"
                )
            name, value = (s.strip() for s in item.split("=", 1))
            name = _SPEC_FIELD_ALIASES.get(name, name)
            if name in _INT_FIELDS:
                fields[name] = int(value)
            elif name in _FLOAT_FIELDS:
                fields[name] = float(value)
            elif name == "when":
                fields[name] = value
            else:
                raise FaultToleranceError(
                    f"unknown fault spec field {name!r} in {text!r}"
                )
    try:
        return FaultSpec(kind=kind, **fields)  # type: ignore[arg-type]
    except TypeError as exc:
        raise FaultToleranceError(f"invalid fault spec {text!r}: {exc}") from exc


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of faults to inject into one run."""

    specs: tuple[FaultSpec, ...] = ()

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    @property
    def message_specs(self) -> tuple[tuple[int, FaultSpec], ...]:
        """(index, spec) pairs for the fabric-level message faults."""
        return tuple((i, s) for i, s in enumerate(self.specs) if s.is_message_fault)

    @property
    def crash_specs(self) -> tuple[tuple[int, FaultSpec], ...]:
        """(index, spec) pairs for the rank-crash faults."""
        return tuple((i, s) for i, s in enumerate(self.specs) if s.kind == "crash")

    @property
    def straggler_specs(self) -> tuple[tuple[int, FaultSpec], ...]:
        """(index, spec) pairs for the compute-slowdown faults."""
        return tuple((i, s) for i, s in enumerate(self.specs) if s.kind == "straggler")

    @classmethod
    def parse(cls, texts: Iterable[str]) -> "FaultSchedule":
        """Build a schedule from CLI-style spec strings."""
        return cls(specs=tuple(parse_fault_spec(t) for t in texts))

    @classmethod
    def coerce(
        cls, value: Union[None, "FaultSchedule", FaultSpec, str, Sequence]
    ) -> Optional["FaultSchedule"]:
        """Accept a schedule, a single spec, spec string(s), or ``None``."""
        if value is None:
            return None
        if isinstance(value, FaultSchedule):
            return value
        if isinstance(value, FaultSpec):
            return cls(specs=(value,))
        if isinstance(value, str):
            return cls.parse([value])
        specs: list[FaultSpec] = []
        for item in value:
            specs.append(item if isinstance(item, FaultSpec) else parse_fault_spec(item))
        return cls(specs=tuple(specs))

    @classmethod
    def random(
        cls,
        seed: int,
        size: int,
        num_jobs: int = 2,
        max_faults: int = 3,
        kinds: Sequence[str] = KINDS,
    ) -> "FaultSchedule":
        """A seeded chaos schedule whose faults are all individually survivable.

        Every generated spec has a finite ``times`` cap, so a run wrapped in a
        :class:`~repro.fault.retry.RetryPolicy` with enough attempts always
        converges on a fault-free execution.
        """
        # string seeds hash deterministically (sha512) across processes,
        # unlike tuple seeds which go through PYTHONHASHSEED-salted hash()
        rng = random.Random(f"papar-chaos:{seed}:{size}:{num_jobs}")
        n = rng.randint(1, max(1, max_faults))
        specs: list[FaultSpec] = []
        for _ in range(n):
            kind = rng.choice(list(kinds))
            if kind == "crash":
                specs.append(
                    FaultSpec(
                        kind="crash",
                        rank=rng.randrange(size),
                        job=rng.randrange(max(1, num_jobs)),
                        when=rng.choice(("before", "after")),
                    )
                )
            elif kind == "straggler":
                specs.append(
                    FaultSpec(
                        kind="straggler",
                        rank=rng.randrange(size),
                        factor=rng.choice((1.5, 2.0, 4.0, 8.0)),
                    )
                )
            else:
                spec = FaultSpec(
                    kind=kind,
                    src=rng.randrange(size) if rng.random() < 0.5 else None,
                    dst=rng.randrange(size) if rng.random() < 0.5 else None,
                    probability=rng.choice((0.25, 0.5, 1.0)),
                    times=rng.randint(1, 2),
                )
                if kind == "delay":
                    spec = replace(spec, delay_s=rng.choice((0.01, 0.1, 1.0)))
                specs.append(spec)
        return cls(specs=tuple(specs))
