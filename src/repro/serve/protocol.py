"""The line-JSON wire protocol of the streaming partition service.

One request per line, one response per line, UTF-8 JSON objects.  Four
verbs (see ``docs/streaming-service.md`` for the full reference):

* ``append``   — ``{"op": "append", "rows": [[...], ...]}``: route an
  incremental record batch into the hot partitions;
* ``query``    — ``{"op": "query"}`` (optionally ``"key": k``): partition
  statistics, generation, and the partition a key would route to;
* ``snapshot`` — ``{"op": "snapshot"}``: atomically publish the current
  partitions to the versioned on-disk snapshot store;
* ``drain``    — ``{"op": "drain"}``: stop admitting appends, finish the
  queue, flush a final snapshot, and shut the daemon down.

Responses always carry ``"ok"``; failures add an HTTP-flavored ``"code"``
(400 malformed, 429 over admission capacity, 503 draining) and an
``"error"`` message.  The codes are part of the contract: clients key
retry behavior off 429 (back off and retry) versus 400/503 (don't).
"""

from __future__ import annotations

import json
from typing import Any, Optional

#: request verbs the server understands
VERBS = ("append", "query", "snapshot", "drain")

#: longest accepted request line in bytes (socket-reader backpressure bound)
MAX_LINE = 8 * 1024 * 1024

#: rejection codes (HTTP-flavored so clients can reuse retry conventions)
BAD_REQUEST = 400
OVERLOADED = 429
DRAINING = 503


class ProtocolError(ValueError):
    """A malformed request line (not JSON, not an object, unknown verb)."""


def decode_request(line: bytes) -> dict[str, Any]:
    """Parse one request line into its verb dict, validating the envelope."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(obj).__name__}")
    op = obj.get("op")
    if op not in VERBS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(VERBS)}"
        )
    if op == "append":
        rows = obj.get("rows")
        if not isinstance(rows, list) or not rows:
            raise ProtocolError("append needs a non-empty 'rows' list")
    return obj


def encode_response(payload: dict[str, Any]) -> bytes:
    """Serialize one response dict to its wire line (newline-terminated)."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def ok(op: str, **fields: Any) -> dict[str, Any]:
    """A success response envelope for ``op``."""
    out: dict[str, Any] = {"ok": True, "op": op}
    out.update(fields)
    return out


def error(code: int, message: str, op: Optional[str] = None) -> dict[str, Any]:
    """A failure response envelope carrying ``code`` and ``message``."""
    out: dict[str, Any] = {"ok": False, "code": code, "error": message}
    if op is not None:
        out["op"] = op
    return out


__all__ = [
    "BAD_REQUEST",
    "DRAINING",
    "MAX_LINE",
    "OVERLOADED",
    "ProtocolError",
    "VERBS",
    "decode_request",
    "encode_response",
    "error",
    "ok",
]
