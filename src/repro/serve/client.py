"""A small blocking client for the streaming partition daemon.

Speaks the line-JSON protocol of :mod:`repro.serve.protocol` over a plain
TCP socket; one request at a time per connection (the server enforces the
same).  Used by the CLI smoke path, the benchmarks, and tests — and small
enough to crib for an application client in any language: connect, write
one JSON line, read one JSON line back.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Optional, Sequence

from repro.serve import protocol
from repro.serve.state import ServeError


class ServeClient:
    """One connection to a :class:`~repro.serve.server.PartitionServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file: Any = None

    # -- connection management ----------------------------------------------

    def connect(self) -> "ServeClient":
        """Open the TCP connection (idempotent); returns self for chaining."""
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        """Close the connection; safe to call repeatedly."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- protocol ------------------------------------------------------------

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request object; return the decoded response object."""
        self.connect()
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        self._file.write(line.encode("utf-8"))
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ServeError("server closed the connection mid-request")
        return json.loads(raw.decode("utf-8"))

    def append(self, rows: Sequence[Sequence[Any]]) -> dict[str, Any]:
        """Route a batch of record rows; returns the server's response."""
        return self.request({"op": "append", "rows": [list(r) for r in rows]})

    def query(self, key: Any = None) -> dict[str, Any]:
        """Partition stats and routing info (optionally for one ``key``)."""
        payload: dict[str, Any] = {"op": "query"}
        if key is not None:
            payload["key"] = key
        return self.request(payload)

    def snapshot(self) -> dict[str, Any]:
        """Ask the daemon to publish a versioned on-disk snapshot."""
        return self.request({"op": "snapshot"})

    def drain(self) -> dict[str, Any]:
        """Gracefully shut the daemon down; returns the drain response."""
        return self.request({"op": "drain"})

    def append_ok(self, rows: Sequence[Sequence[Any]]) -> dict[str, Any]:
        """:meth:`append`, raising :class:`ServeError` on any rejection."""
        response = self.append(rows)
        if not response.get("ok"):
            raise ServeError(
                f"append rejected ({response.get('code')}): {response.get('error')}"
            )
        return response


#: re-exported so client users can branch on rejection codes without
#: importing the protocol module separately
OVERLOADED = protocol.OVERLOADED
DRAINING = protocol.DRAINING
BAD_REQUEST = protocol.BAD_REQUEST

__all__ = ["BAD_REQUEST", "DRAINING", "OVERLOADED", "ServeClient"]
