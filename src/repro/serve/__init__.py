"""The streaming partition service (``python -m repro serve``).

Turns batch PaPar into a long-lived daemon: load a workflow once, hold the
partitions hot, route incremental appends through the vectorized shuffle
fast path, repartition online when balance drifts, and publish atomic
versioned snapshots.  See ``docs/streaming-service.md`` for the protocol
reference, lifecycle, and metrics contract.

Module map:

* :mod:`~repro.serve.protocol` — the four-verb line-JSON wire format;
* :mod:`~repro.serve.state` — append log, partition generations, swaps;
* :mod:`~repro.serve.router` — incremental batch → partition routing;
* :mod:`~repro.serve.balance` — the skew/drift rebalance trigger;
* :mod:`~repro.serve.snapshot` — crc-committed versioned snapshots;
* :mod:`~repro.serve.server` — the asyncio daemon itself;
* :mod:`~repro.serve.client` — a small blocking client.
"""

from repro.serve.balance import BalanceDecision, BalanceMonitor
from repro.serve.client import ServeClient
from repro.serve.router import IncrementalRouter, build_router
from repro.serve.server import PartitionServer, ServeConfig, run_server
from repro.serve.snapshot import SnapshotStore, snapshot_id
from repro.serve.state import PartitionGeneration, ServeError, ServeState

__all__ = [
    "BalanceDecision",
    "BalanceMonitor",
    "IncrementalRouter",
    "PartitionGeneration",
    "PartitionServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeState",
    "SnapshotStore",
    "build_router",
    "run_server",
    "snapshot_id",
]
