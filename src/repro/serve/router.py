"""Incremental routing of appended batches into the hot partitions.

A cold batch run decides each record's partition from *global* information
(its position in the fully sorted order, the sampled range boundaries, the
total record count).  A streamed append cannot know those, so the daemon
routes incrementally with the best vectorized approximation the workflow's
shape allows, and relies on the drift-triggered rebalance to reconcile the
hot partitions with the exact cold-batch answer:

* final ``distribute`` fed by a ``group`` chain — hash-route on the group
  key (:class:`~repro.mapreduce.partitioner.HashPartitioner`), preserving
  key co-location;
* fed by a ``sort`` chain — range-route on the sort key with quantile
  boundaries sampled from the accumulated log
  (:class:`~repro.mapreduce.partitioner.RangePartitioner`), preserving key
  locality;
* no key-bearing stage — positional dealing via
  :func:`~repro.core.runtime.policy_partition_ids` on a running global
  arrival index, which for ``cyclic``/``graphVertexCut`` *is* the exact
  cold answer when arrival order equals file order.

All three run each batch through ``Partitioner.partition_array`` /
``policy_partition_ids`` — one vectorized pass, no per-record Python loop —
and the server buckets the owners with
:func:`repro.mapreduce.columnar.bucketize`.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.planner import WorkflowPlan
from repro.formats.records import RecordSchema
from repro.mapreduce.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.mapreduce.sampling import quantile_boundaries, reservoir_sample
from repro.core.runtime import policy_partition_ids
from repro.ops.distribute import Distribute
from repro.ops.group import Group
from repro.ops.sort import Sort
from repro.serve.state import ServeError

#: how many log keys the range router samples for its quantile boundaries
ROUTER_SAMPLE_SIZE = 4096


class IncrementalRouter:
    """Maps an appended record batch to per-record partition owners."""

    #: routing strategy label (``hash`` / ``range`` / ``positional``)
    kind: str = "base"

    def __init__(self, num_partitions: int, key_field: Optional[str] = None) -> None:
        self.num_partitions = num_partitions
        self.key_field = key_field

    def route(self, records: np.ndarray) -> np.ndarray:
        """Partition owner per record (vectorized; one int64 per record)."""
        raise NotImplementedError

    def partition_for_key(self, key: Any) -> Optional[int]:
        """The partition a single key routes to (``None`` for positional)."""
        return None

    def describe(self) -> dict[str, Any]:
        """A JSON-safe summary for the ``query`` verb."""
        out: dict[str, Any] = {"kind": self.kind, "partitions": self.num_partitions}
        if self.key_field is not None:
            out["key"] = self.key_field
        return out


class KeyedRouter(IncrementalRouter):
    """Route on a key column through a vectorized :class:`Partitioner`."""

    def __init__(
        self, partitioner: Partitioner, key_field: str, kind: str
    ) -> None:
        super().__init__(partitioner.num_reducers, key_field)
        self.partitioner = partitioner
        self.kind = kind

    def route(self, records: np.ndarray) -> np.ndarray:
        """Vectorized owners from the key column (one partitioner pass)."""
        if self.key_field not in (records.dtype.names or ()):
            raise ServeError(
                f"appended batch lacks routing key field {self.key_field!r}"
            )
        return np.asarray(
            self.partitioner.partition_array(records[self.key_field]), dtype=np.int64
        )

    def partition_for_key(self, key: Any) -> Optional[int]:
        """The partition one key value routes to."""
        return int(self.partitioner(key))


class PositionalRouter(IncrementalRouter):
    """Deal records by global arrival index under the distribute policy.

    For ``cyclic`` / ``graphVertexCut`` dealing this matches the cold batch
    run exactly (partition = global index mod P); for ``block`` it is an
    approximation that the next rebalance corrects, because block boundaries
    move as the total grows.
    """

    kind = "positional"

    def __init__(self, op: Distribute, start_index: int) -> None:
        super().__init__(op.num_partitions)
        self.op = op
        #: global arrival index of the next record to route
        self.next_index = start_index

    def route(self, records: np.ndarray) -> np.ndarray:
        """Owners by global arrival index, advancing the running counter."""
        n = len(records)
        global_idx = np.arange(n, dtype=np.int64) + self.next_index
        self.next_index += n
        return policy_partition_ids(
            self.op, global_idx, total=self.next_index, backend="serve"
        )

    def describe(self) -> dict[str, Any]:
        """Base summary plus the policy name and the running index."""
        out = super().describe()
        out["policy"] = self.op.policy.name
        out["next_index"] = self.next_index
        return out


def _routing_stage(plan: WorkflowPlan) -> Optional[Any]:
    """The last key-bearing (sort/group) operator feeding the final distribute."""
    stage = None
    for job in plan.jobs:
        if isinstance(job.operator, (Sort, Group)):
            stage = job.operator
    return stage


def build_router(
    plan: WorkflowPlan,
    input_schema: RecordSchema,
    log_batches: list[np.ndarray],
    total_records: int,
) -> IncrementalRouter:
    """Choose and build the router for ``plan`` from the accumulated log.

    ``log_batches`` feeds the range router's boundary sample;
    ``total_records`` seeds the positional router's global index so dealing
    continues where the last rebuild left off.
    """
    final = plan.final_job.operator
    if not isinstance(final, Distribute):
        raise ServeError(
            f"serve needs a workflow ending in a distribute job, got "
            f"{plan.final_job.operator_name!r}"
        )
    stage = _routing_stage(plan)
    if stage is not None and input_schema.has_field(stage.key):
        if isinstance(stage, Group):
            return KeyedRouter(
                HashPartitioner(final.num_partitions), stage.key, kind="hash"
            )
        boundaries = _sampled_boundaries(
            stage, log_batches, final.num_partitions
        )
        if boundaries is not None:
            return KeyedRouter(
                RangePartitioner(boundaries, final.num_partitions),
                stage.key,
                kind="range",
            )
    return PositionalRouter(final, start_index=total_records)


def _sampled_boundaries(
    op: Sort, log_batches: list[np.ndarray], num_partitions: int
) -> Optional[list[Any]]:
    """Quantile split points of the sort key over the log, or None when empty."""
    if num_partitions == 1:
        return []
    rng = np.random.default_rng(0)
    samples: list[Any] = []
    for batch in log_batches:
        if len(batch) and op.key in (batch.dtype.names or ()):
            keys = np.asarray(batch[op.key])
            samples.extend(reservoir_sample(keys if op.ascending else -keys,
                                            ROUTER_SAMPLE_SIZE, rng))
    if not samples:
        return None
    return quantile_boundaries(
        reservoir_sample(samples, ROUTER_SAMPLE_SIZE, rng), num_partitions
    )


__all__ = [
    "IncrementalRouter",
    "KeyedRouter",
    "PositionalRouter",
    "ROUTER_SAMPLE_SIZE",
    "build_router",
]
