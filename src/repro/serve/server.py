"""The long-lived partition daemon: asyncio server, rebalance, snapshots.

One event loop owns everything mutable; that single-threaded discipline is
what makes the atomic-swap contract cheap:

* each connection's handler reads one line, fully answers it, then reads
  the next — per-connection socket backpressure for free;
* ``append`` requests pass admission control (``--max-pending``, explicit
  429-style rejection) and enqueue onto one worker coroutine, which drains
  the queue in batches — concurrent appends coalesce into a single
  vectorized route + bucketize pass;
* the balance monitor runs after each drained batch; past the threshold it
  schedules a background rebuild (``PaPar.run`` over the frozen log, any
  backend, in an executor thread) whose result is swapped in *on the loop*
  together with the re-routed tail — no request ever observes a torn
  generation;
* ``snapshot`` freezes the state loop-side and publishes it through
  :class:`~repro.serve.snapshot.SnapshotStore` in the executor;
* SIGTERM/SIGINT (via :func:`repro.lifecycle.install_async_shutdown`) and
  the ``drain`` verb share one path: stop admitting, drain the queue,
  finish any rebalance, flush a final snapshot, exit 0.

Metrics flow through :mod:`repro.obs`: per-request spans, ``serve.*``
counters/histograms, and the ``papar.serve`` v1 document
(:func:`repro.obs.export.serve_metrics_json`).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Optional, Union

import numpy as np

from repro.config.workflow import WorkflowSpec
from repro.core.dataset import Dataset
from repro.lifecycle import install_async_shutdown
from repro.mapreduce.columnar import bucketize
from repro.obs.adapters import record_rebalance, record_serve_request
from repro.obs.export import serve_metrics_json
from repro.obs.span import Recorder
from repro.serve import protocol
from repro.serve.balance import DEFAULT_THRESHOLD, BalanceMonitor
from repro.serve.router import IncrementalRouter, build_router
from repro.serve.snapshot import DEFAULT_RETAIN, SnapshotStore, snapshot_id
from repro.serve.state import PartitionGeneration, ServeError, ServeState


@dataclass
class ServeConfig:
    """Daemon configuration (the ``python -m repro serve`` flags)."""

    host: str = "127.0.0.1"
    #: 0 lets the OS pick a free port (reported by :meth:`PartitionServer.start`)
    port: int = 0
    #: skew/drift ratio past which an online repartition is scheduled
    rebalance_threshold: float = DEFAULT_THRESHOLD
    #: append queue depth past which requests are rejected with code 429
    max_pending: int = 64
    #: directory for versioned snapshots (None disables snapshot/warm restart)
    snapshot_dir: Optional[str] = None
    #: backend for warm start and background rebuilds
    backend: str = "serial"
    num_ranks: int = 1
    #: override of the input format id (defaults to the workflow's input arg)
    schema_id: Optional[str] = None
    #: how many published snapshot generations to retain
    retain: int = DEFAULT_RETAIN


class PartitionServer:
    """Holds partitions hot and serves the four-verb line-JSON protocol."""

    def __init__(
        self,
        papar: Any,
        workflow: Union[WorkflowSpec, str],
        args: dict[str, Any],
        config: Optional[ServeConfig] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.papar = papar
        self.spec = (
            papar.load_workflow(workflow) if isinstance(workflow, str) else workflow
        )
        self.args = dict(args)
        self.config = config or ServeConfig()
        self.recorder = recorder or Recorder()
        self.monitor = BalanceMonitor(self.config.rebalance_threshold)
        self.snapshots: Optional[SnapshotStore] = (
            SnapshotStore(self.config.snapshot_dir, retain=self.config.retain)
            if self.config.snapshot_dir
            else None
        )
        self.state = ServeState()
        self.plan = papar.plan(self.spec, self.args)
        self.input_schema = papar.schema(
            self.config.schema_id or self._declared_schema_id()
        )
        self.router: Optional[IncrementalRouter] = None
        #: True once the daemon restored from a snapshot instead of the input
        self.restored = False
        self._queue: asyncio.Queue = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker: Optional[asyncio.Task] = None
        self._rebalance_task: Optional[asyncio.Task] = None
        self._stopped: Optional[asyncio.Event] = None
        self._remove_signals = lambda: None
        self._draining = False
        self._drained = False
        self.rebalance_events: list[dict[str, Any]] = []

    def _declared_schema_id(self) -> str:
        from repro.core.files import find_io_arguments

        input_arg, _ = find_io_arguments(self.spec)
        fmt = self.spec.arguments[input_arg].format
        if not fmt:
            raise ServeError(
                f"argument {input_arg!r} declares no input format; pass schema_id"
            )
        return fmt

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Warm-start (or snapshot-restore) the state and open the socket."""
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        await loop.run_in_executor(None, self._load_initial_state)
        self._worker = loop.create_task(self._append_worker())
        self._server = await asyncio.start_server(
            self._handle_conn,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE,
        )
        self._remove_signals = install_async_shutdown(
            loop, lambda signum: loop.create_task(self._drain_and_stop())
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        self.recorder.instant(
            f"serve start on {host}:{port}", category="serve",
            attrs={"restored": self.restored},
        )
        return host, port

    def _load_initial_state(self) -> None:
        """Build the initial generation: snapshot restore, else cold run."""
        if self.snapshots is not None:
            restored = self.snapshots.load_latest()
            if restored is not None:
                self.state, _meta = restored
                self.router = build_router(
                    self.plan, self.input_schema, self.state.log,
                    self.state.log_records,
                )
                self.restored = True
                return
        _spec, _schema, data, result = self.papar.warm_start(
            self.spec,
            self.args,
            backend=self.config.backend,
            num_ranks=self.config.num_ranks,
            schema_id=self.config.schema_id,
        )
        self.state.append_log(np.asarray(data.to_flat().records))
        self.state.current = PartitionGeneration.from_partitions(
            0,
            [np.asarray(p.to_flat().records) for p in result.partitions],
            self.state.log_records,
        )
        self.router = build_router(
            self.plan, self.input_schema, self.state.log, self.state.log_records
        )

    async def serve_forever(self) -> None:
        """Block until a drain (verb or signal) completes."""
        assert self._stopped is not None
        await self._stopped.wait()

    async def _drain_and_stop(self) -> None:
        """Graceful shutdown (the signal path): quiesce, then tear down."""
        await self._quiesce()
        await self._finalize()

    async def _quiesce(self) -> None:
        """Reject new appends, drain the queue, finish rebalance, flush."""
        if self._drained:
            return
        self._draining = True
        await self._queue.join()
        if self._rebalance_task is not None:
            await asyncio.gather(self._rebalance_task, return_exceptions=True)
        if self.snapshots is not None and self.state.current is not None:
            await self._publish_snapshot()
        self._drained = True
        self.recorder.instant("serve drain complete", category="serve")

    async def _finalize(self) -> None:
        """Stop the worker, close the socket, and release serve_forever."""
        if self._stopped is None or self._stopped.is_set():
            return
        if self._worker is not None:
            self._worker.cancel()
            await asyncio.gather(self._worker, return_exceptions=True)
        self._remove_signals()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    # -- connection handling -------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client: strictly one request at a time per connection."""
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(protocol.encode_response(protocol.error(
                        protocol.BAD_REQUEST,
                        f"request line exceeds {protocol.MAX_LINE} bytes",
                    )))
                    await writer.drain()
                    break
                if not line or not line.strip():
                    break
                response = await self._dispatch(line)
                writer.write(protocol.encode_response(response))
                await writer.drain()
                if response.get("op") == "drain" and response.get("ok"):
                    # the client has its answer on the wire; now tear down
                    await self._finalize()
                    break
        except ConnectionResetError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, line: bytes) -> dict[str, Any]:
        """Decode, route to the verb handler, and span the request."""
        t0 = self.recorder.wall_now()
        try:
            request = protocol.decode_request(line)
        except protocol.ProtocolError as exc:
            record_serve_request(self.recorder, "invalid", rejected=True)
            return protocol.error(protocol.BAD_REQUEST, str(exc))
        op = request["op"]
        try:
            if op == "append":
                response = await self._handle_append(request, t0)
            elif op == "query":
                response = self._handle_query(request)
            elif op == "snapshot":
                response = await self._handle_snapshot()
            else:
                response = await self._handle_drain()
        except ServeError as exc:
            response = protocol.error(protocol.BAD_REQUEST, str(exc), op=op)
        if op != "append":  # append records its own latency metrics
            record_serve_request(self.recorder, op)
        self.recorder.record_span(
            name=f"serve.{op}", category="serve", rank=None,
            start_virtual=0.0, end_virtual=0.0,
            start_wall=t0, end_wall=self.recorder.wall_now(),
            attrs={"ok": bool(response.get("ok"))},
        )
        return response

    # -- append --------------------------------------------------------------

    async def _handle_append(
        self, request: dict[str, Any], t0: float
    ) -> dict[str, Any]:
        if self._draining:
            record_serve_request(self.recorder, "append", rejected=True)
            return protocol.error(
                protocol.DRAINING, "daemon is draining", op="append"
            )
        if self._queue.qsize() >= self.config.max_pending:
            record_serve_request(self.recorder, "append", rejected=True)
            return protocol.error(
                protocol.OVERLOADED,
                f"append queue at --max-pending={self.config.max_pending}",
                op="append",
            )
        try:
            records = self.input_schema.to_structured(request["rows"])
        except Exception as exc:
            record_serve_request(self.recorder, "append", rejected=True)
            return protocol.error(
                protocol.BAD_REQUEST,
                f"rows do not fit schema {self.input_schema.id!r}: {exc}",
                op="append",
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((records, future))
        self.recorder.gauge("serve.queue_depth", self._queue.qsize())
        generation = await future
        latency_ms = (self.recorder.wall_now() - t0) * 1e3
        record_serve_request(
            self.recorder, "append", latency_ms=latency_ms, records=len(records)
        )
        return protocol.ok(
            "append",
            records=len(records),
            generation=generation,
            total_records=self.state.log_records,
        )

    async def _append_worker(self) -> None:
        """Drain the append queue, coalescing bursts into one routed pass."""
        while True:
            items = [await self._queue.get()]
            while True:
                try:
                    items.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                self._process_appends(items)
            finally:
                for _ in items:
                    self._queue.task_done()
            self.recorder.gauge("serve.queue_depth", self._queue.qsize())
            self._check_balance()

    def _process_appends(self, items: list[tuple[np.ndarray, asyncio.Future]]) -> None:
        """Route a coalesced batch through the vectorized fast path."""
        assert self.router is not None and self.state.current is not None
        if len(items) > 1:
            self.recorder.count("serve.coalesced_batches", len(items) - 1)
        batches = [records for records, _ in items]
        merged = np.concatenate(batches) if len(batches) > 1 else batches[0]
        try:
            owners = self.router.route(merged)
            generation = self.state.current
            for pid, idx in enumerate(bucketize(owners, generation.num_partitions)):
                if len(idx):
                    generation.append(pid, merged[idx])
            for records, _ in items:
                self.state.append_log(records)
        except Exception as exc:
            for _, future in items:
                if not future.done():
                    future.set_exception(
                        exc if isinstance(exc, ServeError) else ServeError(str(exc))
                    )
            return
        for _, future in items:
            if not future.done():
                future.set_result(generation.generation)

    # -- rebalance -----------------------------------------------------------

    def _check_balance(self) -> None:
        decision = self.monitor.check(self.state)
        self.recorder.gauge("serve.skew", decision.skew)
        self.recorder.gauge("serve.drift", decision.drift)
        if decision.due and (
            self._rebalance_task is None or self._rebalance_task.done()
        ):
            self._rebalance_task = asyncio.get_running_loop().create_task(
                self._rebalance(decision.reason or "skew")
            )

    async def _rebalance(self, reason: str) -> None:
        """Rebuild from the frozen log off-loop, swap in atomically on-loop."""
        t0 = time.perf_counter()
        frozen, frozen_records = self.state.freeze_log()
        loop = asyncio.get_running_loop()
        try:
            partitions = await loop.run_in_executor(None, self._rebuild, frozen)
        except Exception as exc:
            self.recorder.instant(
                f"rebalance failed: {exc}", category="serve",
                attrs={"reason": reason},
            )
            return
        # back on the event loop: everything below is one synchronous block,
        # so no request can interleave between tail re-route and swap
        assert self.state.current is not None
        new_generation = PartitionGeneration.from_partitions(
            self.state.current.generation + 1, partitions, frozen_records
        )
        router = build_router(
            self.plan, self.input_schema, self.state.log, self.state.log_records
        )
        tail = self.state.log[len(frozen):]
        for batch in tail:
            owners = router.route(batch)
            for pid, idx in enumerate(bucketize(owners, new_generation.num_partitions)):
                if len(idx):
                    new_generation.append(pid, batch[idx])
        self.state.swap(new_generation)
        self.router = router
        wall_s = time.perf_counter() - t0
        record_rebalance(
            self.recorder, new_generation.generation, reason, wall_s, frozen_records
        )
        self.rebalance_events.append(
            {"generation": new_generation.generation, "reason": reason,
             "records": frozen_records, "wall_s": wall_s}
        )

    def _rebuild(self, frozen: list[np.ndarray]) -> list[np.ndarray]:
        """Cold-run the workflow over the frozen log (executor thread)."""
        merged = np.concatenate(frozen) if len(frozen) > 1 else frozen[0]
        data = Dataset.from_array(self.input_schema, merged)
        result = self.papar.run(
            self.plan,
            self.args,
            data=data,
            backend=self.config.backend,
            num_ranks=self.config.num_ranks,
        )
        return [np.asarray(p.to_flat().records) for p in result.partitions]

    # -- query / snapshot / drain --------------------------------------------

    def _handle_query(self, request: dict[str, Any]) -> dict[str, Any]:
        generation = self.state.current
        if generation is None:
            raise ServeError("no generation live yet")
        router = self.router
        decision = self.monitor.check(self.state)
        fields: dict[str, Any] = {
            "generation": generation.generation,
            "partitions": generation.stats(
                router.key_field if router is not None else None
            ),
            "total_records": generation.total_records,
            "log_records": self.state.log_records,
            "skew": decision.skew,
            "drift": decision.drift,
            "pending": self._queue.qsize(),
            "router": router.describe() if router is not None else None,
            "snapshot": (
                snapshot_id(generation.generation)
                if self.snapshots is not None
                and self.snapshots.current_generation() == generation.generation
                else None
            ),
        }
        if "key" in request and router is not None:
            fields["key_partition"] = router.partition_for_key(request["key"])
        return protocol.ok("query", **fields)

    async def _handle_snapshot(self) -> dict[str, Any]:
        if self.snapshots is None:
            raise ServeError("daemon started without --snapshot-dir")
        sid = await self._publish_snapshot()
        return protocol.ok(
            "snapshot", snapshot=sid, generation=self.state.current.generation
        )

    async def _publish_snapshot(self) -> str:
        """Freeze state loop-side, publish in the executor, count it."""
        frozen = self._freeze_state()
        loop = asyncio.get_running_loop()
        sid = await loop.run_in_executor(
            None, self.snapshots.publish, frozen, self.plan.workflow_id
        )
        self.recorder.count("serve.snapshots")
        self.recorder.instant(f"snapshot {sid}", category="serve")
        return sid

    def _freeze_state(self) -> ServeState:
        """A shallow-frozen copy safe to publish from a worker thread."""
        generation = self.state.current
        frozen = ServeState(
            log=list(self.state.log), log_records=self.state.log_records
        )
        frozen.current = PartitionGeneration(
            generation=generation.generation,
            chunks=[list(c) for c in generation.chunks],
            counts=generation.counts.copy(),
            rebuilt_records=generation.rebuilt_records,
        )
        return frozen

    async def _handle_drain(self) -> dict[str, Any]:
        await self._quiesce()
        generation = (
            self.state.current.generation if self.state.current is not None else None
        )
        return protocol.ok(
            "drain", generation=generation, total_records=self.state.log_records
        )

    # -- metrics -------------------------------------------------------------

    def metrics_doc(self) -> dict[str, Any]:
        """The ``papar.serve`` v1 document for this daemon's recorder."""
        generation = self.state.current
        return serve_metrics_json(
            self.recorder,
            server={
                "generation": generation.generation if generation else None,
                "partitions": generation.num_partitions if generation else 0,
                "total_records": generation.total_records if generation else 0,
                "log_records": self.state.log_records,
                "max_pending": self.config.max_pending,
                "rebalance_threshold": self.config.rebalance_threshold,
                "rebalance_events": list(self.rebalance_events),
                "restored": self.restored,
            },
        )


async def run_server(
    papar: Any,
    workflow: Union[WorkflowSpec, str],
    args: dict[str, Any],
    config: Optional[ServeConfig] = None,
    recorder: Optional[Recorder] = None,
    ready: Optional[Any] = None,
) -> PartitionServer:
    """Start a daemon, announce readiness, and serve until drained.

    ``ready`` is an optional callable receiving ``(host, port)`` once the
    socket is listening (the CLI prints it; tests grab the port).  Returns
    the server after a graceful drain for inspection.
    """
    server = PartitionServer(papar, workflow, args, config=config, recorder=recorder)
    host, port = await server.start()
    if ready is not None:
        ready(host, port)
    await server.serve_forever()
    return server


__all__ = ["PartitionServer", "ServeConfig", "run_server"]
