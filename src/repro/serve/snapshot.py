"""Versioned on-disk snapshots of the daemon's hot state.

Reuses the crash-safe commit discipline of
:class:`~repro.fault.checkpoint.DiskCheckpointStore` (temp file → fsync →
crc32 footer → atomic rename): every value written here is either fully
committed or reads as missing.  On top of that, a snapshot of generation
``g`` is published in a strict order —

1. one key per partition (``serve/gen<g>/part<i>``, the chunk lists),
2. the append log (``serve/gen<g>/log``, the ground truth for rebuilds),
3. the generation's metadata (``serve/gen<g>/meta``),
4. finally the ``serve/CURRENT`` pointer.

Because the pointer flips last and atomically, a reader (the daemon's warm
restart, or an operator inspecting the directory) always sees a complete
generation: either the previous one or the new one, never a torn mix.
Superseded generations are pruned down to a retention window after each
publish.
"""

from __future__ import annotations

import time
from typing import Any, Optional

import numpy as np

from repro.fault.checkpoint import CheckpointStore, DiskCheckpointStore
from repro.serve.state import PartitionGeneration, ServeError, ServeState

#: the atomically flipped pointer to the newest complete snapshot
CURRENT_KEY = "serve/CURRENT"

#: how many published generations survive pruning by default
DEFAULT_RETAIN = 2


def snapshot_id(generation: int) -> str:
    """The stable identifier of generation ``generation`` (``gen<g>``)."""
    return f"gen{generation:08d}"


class SnapshotStore:
    """Publishes and restores daemon state through a checkpoint store."""

    def __init__(
        self, store: CheckpointStore | str, retain: int = DEFAULT_RETAIN
    ) -> None:
        if isinstance(store, str):
            store = DiskCheckpointStore(store)
        self.store = store
        self.retain = max(1, retain)

    # -- publishing ----------------------------------------------------------

    def publish(self, state: ServeState, workflow_id: str) -> str:
        """Atomically publish the current generation; returns its snapshot id.

        Safe to call with requests in flight: the caller passes a state
        reference captured on the event loop, and every key commit is
        individually atomic with ``CURRENT`` flipped last.
        """
        gen = state.current
        if gen is None:
            raise ServeError("nothing to snapshot: no generation is live yet")
        sid = snapshot_id(gen.generation)
        prefix = f"serve/{sid}"
        for pid, chunks in enumerate(gen.chunks):
            self.store.save(f"{prefix}/part{pid:05d}", list(chunks))
        self.store.save(f"{prefix}/log", list(state.log))
        self.store.save(
            f"{prefix}/meta",
            {
                "generation": gen.generation,
                "workflow_id": workflow_id,
                "num_partitions": gen.num_partitions,
                "rebuilt_records": gen.rebuilt_records,
                "log_records": state.log_records,
                "log_batches": len(state.log),
                "created_unix": time.time(),
            },
        )
        self.store.save(CURRENT_KEY, {"generation": gen.generation})
        self.prune()
        return sid

    def prune(self) -> int:
        """Delete generations older than the retention window; returns count."""
        current = self.current_generation()
        if current is None:
            return 0
        floor = current - self.retain + 1
        dropped = 0
        for key in self.store.keys():
            gen = _generation_of(key)
            if gen is not None and gen < floor:
                self.store.delete(key)
                dropped += 1
        return dropped

    # -- restoring -----------------------------------------------------------

    def current_generation(self) -> Optional[int]:
        """The generation ``CURRENT`` points at, or None when never published."""
        if CURRENT_KEY not in self.store:
            return None
        return int(self.store.load(CURRENT_KEY)["generation"])

    def load_latest(self) -> Optional[tuple[ServeState, dict[str, Any]]]:
        """Restore the newest complete snapshot as ``(state, meta)``.

        Returns ``None`` when no snapshot was ever published.  Raises
        :class:`ServeError` when ``CURRENT`` points at a generation whose
        keys are missing or torn (each reads as absent by the crc footer).
        """
        generation = self.current_generation()
        if generation is None:
            return None
        prefix = f"serve/{snapshot_id(generation)}"
        try:
            meta = self.store.load(f"{prefix}/meta")
            log = self.store.load(f"{prefix}/log")
            chunks = [
                self.store.load(f"{prefix}/part{pid:05d}")
                for pid in range(meta["num_partitions"])
            ]
        except Exception as exc:
            raise ServeError(
                f"snapshot {snapshot_id(generation)} is incomplete: {exc}"
            ) from exc
        state = ServeState()
        for batch in log:
            state.append_log(batch)
        state.current = PartitionGeneration(
            generation=generation,
            chunks=[list(c) for c in chunks],
            counts=np.array(
                [sum(len(x) for x in c) for c in chunks], dtype=np.int64
            ),
            rebuilt_records=meta["rebuilt_records"],
        )
        return state, meta


def _generation_of(key: str) -> Optional[int]:
    """Parse the generation out of a ``serve/gen<g>/...`` key, else None."""
    parts = key.split("/")
    if len(parts) < 2 or parts[0] != "serve" or not parts[1].startswith("gen"):
        return None
    try:
        return int(parts[1][3:])
    except ValueError:
        return None


__all__ = [
    "CURRENT_KEY",
    "DEFAULT_RETAIN",
    "SnapshotStore",
    "snapshot_id",
]
