"""Balance monitoring: decide when the daemon should repartition online.

Watches two signals after every append, either of which can cross the
``--rebalance-threshold``:

* **skew** — ``(max - min) / mean`` of the per-partition record counts.
  Catches load imbalance from hash/range routing over a shifting key
  distribution.
* **drift** — the fraction of the log the current generation has *not*
  been rebuilt over.  Catches the cases count-skew cannot: cyclic dealing
  keeps counts perfectly level while the incrementally-routed tail diverges
  ever further from the exact cold-batch placement, and mixed-schema tail
  chunks accumulate until a rebuild folds them in.

The monitor is pure decision logic — the server owns scheduling the
background rebuild and the atomic swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.serve.state import ServeState

#: default --rebalance-threshold (both skew and drift are ratios in [0, ~])
DEFAULT_THRESHOLD = 0.5


@dataclass
class BalanceDecision:
    """Why (or why not) a rebalance should run now."""

    #: ``"skew"`` or ``"drift"`` when a rebalance is due, else ``None``
    reason: Optional[str]
    skew: float
    drift: float

    @property
    def due(self) -> bool:
        """True when either signal crossed the threshold."""
        return self.reason is not None


class BalanceMonitor:
    """Tracks partition balance and drift against one threshold."""

    def __init__(self, threshold: float = DEFAULT_THRESHOLD) -> None:
        if threshold <= 0:
            raise ValueError(f"rebalance threshold must be > 0, got {threshold!r}")
        self.threshold = threshold

    @staticmethod
    def skew(counts: np.ndarray) -> float:
        """Relative spread ``(max - min) / mean`` of partition counts."""
        if len(counts) == 0:
            return 0.0
        total = counts.sum()
        if total == 0:
            return 0.0
        mean = total / len(counts)
        return float((counts.max() - counts.min()) / mean)

    def check(self, state: ServeState) -> BalanceDecision:
        """Evaluate both signals against the current state."""
        if state.current is None:
            return BalanceDecision(reason=None, skew=0.0, drift=0.0)
        skew = self.skew(state.current.counts)
        drift = state.drift_fraction
        reason = None
        if skew > self.threshold:
            reason = "skew"
        elif drift > self.threshold:
            reason = "drift"
        return BalanceDecision(reason=reason, skew=skew, drift=drift)


__all__ = ["BalanceDecision", "BalanceMonitor", "DEFAULT_THRESHOLD"]
