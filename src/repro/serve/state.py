"""Hot partition state of the daemon: append log, generations, atomic swap.

Two structures live here:

* :class:`PartitionGeneration` — one generation's hot partitions.  Each
  partition is a list of record-array *chunks*: the rebuilt base (workflow
  output schema) plus the incrementally-routed batches appended since (in
  the input schema — a rebalance folds them into the workflow schema).
* :class:`ServeState` — the arrival-ordered append log plus the *current*
  generation.  The swap discipline is the subsystem's core invariant:
  mutation happens only between awaits on the daemon's single event loop,
  and a rebalance replaces the whole :class:`PartitionGeneration` object in
  one assignment — an in-flight request that grabbed a reference keeps
  seeing a fully consistent generation, never a torn mix of old and new
  partitions (pinned by ``tests/serve/test_server.py``).

The log is the ground truth: a rebalance rebuilds partitions by running the
full workflow over the accumulated log, which is exactly the cold batch run
over the concatenated input — the bit-identical equivalence contract of
``tests/serve/test_incremental_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import PaParError


class ServeError(PaParError):
    """A streaming-service configuration or state error."""


@dataclass
class PartitionGeneration:
    """One generation of hot partitions (rebuilt base + appended chunks)."""

    #: monotonically increasing swap counter (0 = the warm-start build)
    generation: int
    #: per-partition chunk lists; chunk dtypes may differ between the
    #: rebuilt base and incrementally appended input-schema batches
    chunks: list[list[np.ndarray]]
    #: per-partition record counts (kept incrementally; int64)
    counts: np.ndarray
    #: how many log records the rebuilt base covers (drift = log - this)
    rebuilt_records: int

    @classmethod
    def from_partitions(
        cls, generation: int, partitions: list[np.ndarray], rebuilt_records: int
    ) -> "PartitionGeneration":
        """Wrap freshly rebuilt partition arrays as a new generation."""
        return cls(
            generation=generation,
            chunks=[[p] for p in partitions],
            counts=np.array([len(p) for p in partitions], dtype=np.int64),
            rebuilt_records=rebuilt_records,
        )

    @property
    def num_partitions(self) -> int:
        """How many partitions this generation holds."""
        return len(self.chunks)

    @property
    def total_records(self) -> int:
        """Records across every partition (base + appended chunks)."""
        return int(self.counts.sum())

    def append(self, partition_id: int, records: np.ndarray) -> None:
        """Attach one routed chunk to ``partition_id`` (event-loop only)."""
        if len(records) == 0:
            return
        self.chunks[partition_id].append(records)
        self.counts[partition_id] += len(records)

    def partition_records(self, partition_id: int) -> np.ndarray:
        """One partition materialized as a single record array.

        Raises :class:`ServeError` when the partition holds chunks of
        different schemas (appends since the last rebalance use the input
        schema while the rebuilt base uses the workflow output schema) —
        callers that need a uniform array should rebalance first.
        """
        chunks = self.chunks[partition_id]
        if not chunks:
            return np.empty(0)
        dtypes = {c.dtype for c in chunks}
        if len(dtypes) > 1:
            raise ServeError(
                f"partition {partition_id} holds mixed-schema chunks "
                "(incremental appends pending); rebalance before materializing"
            )
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)

    def key_range(self, partition_id: int, key_field: str) -> Optional[tuple[Any, Any]]:
        """(min, max) of ``key_field`` in a partition, or None when absent."""
        lo = hi = None
        for chunk in self.chunks[partition_id]:
            if len(chunk) == 0 or key_field not in (chunk.dtype.names or ()):
                continue
            col = chunk[key_field]
            clo, chi = col.min(), col.max()
            lo = clo if lo is None else min(lo, clo)
            hi = chi if hi is None else max(hi, chi)
        if lo is None:
            return None
        return (lo.item() if hasattr(lo, "item") else lo,
                hi.item() if hasattr(hi, "item") else hi)

    def stats(self, key_field: Optional[str] = None) -> list[dict[str, Any]]:
        """Per-partition summary rows for the ``query`` verb."""
        out = []
        for pid in range(self.num_partitions):
            row: dict[str, Any] = {"id": pid, "records": int(self.counts[pid])}
            if key_field is not None:
                rng = self.key_range(pid, key_field)
                if rng is not None:
                    row["key_min"], row["key_max"] = rng
            out.append(row)
        return out


@dataclass
class ServeState:
    """The append log plus the current partition generation."""

    #: arrival-ordered record batches; batch 0 is the warm-start input
    log: list[np.ndarray] = field(default_factory=list)
    #: total records across the log (cached; the log can get long)
    log_records: int = 0
    #: the hot generation requests read (swapped atomically on rebalance)
    current: Optional[PartitionGeneration] = None

    def append_log(self, records: np.ndarray) -> None:
        """Record one arrived batch in the ground-truth log."""
        self.log.append(records)
        self.log_records += len(records)

    def freeze_log(self) -> tuple[list[np.ndarray], int]:
        """A stable (copy, record count) of the log for a background rebuild.

        The returned list is safe to read from a worker thread: batches are
        append-only and the copy pins the prefix the rebuild covers.
        """
        return list(self.log), self.log_records

    def swap(self, new_generation: PartitionGeneration) -> PartitionGeneration:
        """Publish ``new_generation`` as current (single-assignment atomic)."""
        if self.current is not None and new_generation.generation <= self.current.generation:
            raise ServeError(
                f"generation must advance: {new_generation.generation} <= "
                f"{self.current.generation}"
            )
        self.current = new_generation
        return new_generation

    @property
    def drift_fraction(self) -> float:
        """Fraction of the log the current generation has not been rebuilt over."""
        if self.current is None or self.log_records == 0:
            return 0.0
        pending = self.log_records - self.current.rebuilt_records
        return max(0.0, pending / self.log_records)


__all__ = ["PartitionGeneration", "ServeError", "ServeState"]
