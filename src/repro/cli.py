"""Command-line driver: ``python -m repro <command> ...``.

The paper's runtime reads workflow arguments "from the configuration file at
runtime" with overrides from the command line; this CLI is that front end:

* ``lint``     — statically analyze the configs and report every finding;
* ``explain``  — render the analyzed plan-IR (schemas, liveness, exchange cost);
* ``optimize`` — apply the PAP08x rewrite passes, show the plan diff;
* ``plan``     — parse the configs, resolve arguments, print the job table;
* ``codegen``  — emit the generated partitioner source;
* ``run``      — partition an input file into ``part-NNNNN`` output files;
* ``serve``    — keep the partitions hot in a long-lived daemon that
  accepts incremental appends, rebalances online, and publishes atomic
  snapshots (see ``docs/streaming-service.md``).

``plan`` and ``run`` accept ``--optimize`` to execute the rewritten plan
(outputs stay bit-identical; only the exchange payloads shrink).

``plan`` and ``run`` lint first and refuse configurations with errors
(override with ``--no-lint``).

Example::

    python -m repro run \\
        --input-config blast_db.xml --workflow blast_partition.xml \\
        --arg input_path=db.index --arg output_path=out/ \\
        --arg num_partitions=16 --backend mpi --ranks 8
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import PaPar
from repro.errors import PaParError


def _parse_arg_pairs(pairs: list[str]) -> dict[str, str]:
    args = {}
    for pair in pairs:
        if "=" not in pair:
            raise PaParError(f"--arg expects name=value, got {pair!r}")
        name, value = pair.split("=", 1)
        args[name] = value
    return args


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PaPar: generate and run application-specific data partitioners",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--input-config",
            action="append",
            default=[],
            metavar="FILE",
            help="input-data configuration XML (repeatable)",
        )
        p.add_argument("--workflow", required=True, metavar="FILE",
                       help="workflow configuration XML")
        p.add_argument("--arg", action="append", default=[], metavar="NAME=VALUE",
                       help="workflow argument (repeatable)")
        p.add_argument("--no-lint", action="store_true",
                       help="skip the static analysis gate")

    p_lint = sub.add_parser(
        "lint", help="statically analyze configurations without running them"
    )
    p_lint.add_argument("workflow", metavar="WORKFLOW_XML", nargs="?",
                        default=None,
                        help="workflow configuration file (omit with --explain)")
    p_lint.add_argument("--explain", metavar="PAPnnn", default=None,
                        help="print the catalog entry of a rule (description, "
                             "severity, bad/good example) and exit")
    p_lint.add_argument("--input", "--input-config", action="append", default=[],
                        dest="input", metavar="FILE",
                        help="input-data configuration XML (repeatable)")
    p_lint.add_argument("--arg", action="append", default=[], metavar="NAME=VALUE",
                        help="workflow argument (repeatable); improves "
                             "$reference resolution")
    p_lint.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    p_lint.add_argument("--strict", action="store_true",
                        help="treat warnings as errors (non-zero exit)")
    p_lint.add_argument("--ranks", type=int, default=None, metavar="N",
                        help="intended rank count (enables cluster-fit rules)")
    p_lint.add_argument("--no-plan", action="store_true",
                        help="skip the resolved-plan rule family (PAP04x)")
    p_lint.add_argument("--memory-budget", default=None, metavar="SIZE",
                        help="declared per-rank memory budget (e.g. 64MB); "
                             "enables the out-of-core rules (PAP06x)")
    p_lint.add_argument("--assume-records", type=int, default=None, metavar="N",
                        help="assumed input record count for budget sizing "
                             "(with --memory-budget)")
    p_lint.add_argument("--backend", default=None,
                        choices=("serial", "mpi", "mapreduce", "process"),
                        help="intended execution backend "
                             "(enables the backend-fit rules, PAP07x)")
    p_lint.add_argument("--faults", action="append", default=[], metavar="SPEC",
                        help="fault-injection spec the run would use "
                             "(repeatable); with --backend process, PAP070 "
                             "warns that the runtime will refuse injection")
    p_lint.add_argument("--checkpoint-dir", metavar="DIR",
                        help="checkpoint directory the run would use; "
                             "silences PAP072 for large process-backend runs")
    p_lint.add_argument("--serve", action="store_true",
                        help="the workflow is destined for the streaming "
                             "daemon (enables the serving-fit rules, PAP090)")

    p_explain = sub.add_parser(
        "explain",
        help="render the analyzed plan-IR: inferred schemas, live columns, "
             "and estimated rows/bytes per exchange",
    )
    p_explain.add_argument("workflow", metavar="WORKFLOW_XML",
                           help="workflow configuration file")
    p_explain.add_argument("--input", "--input-config", action="append",
                           default=[], dest="input", metavar="FILE",
                           help="input-data configuration XML (repeatable)")
    p_explain.add_argument("--arg", action="append", default=[],
                           metavar="NAME=VALUE",
                           help="workflow argument (repeatable); binding the "
                                "real input path enables file-backed row counts")
    p_explain.add_argument("--format", choices=("text", "json"), default="text",
                           help="report format (default: text)")
    p_explain.add_argument("--ranks", type=int, default=None, metavar="N",
                           help="intended rank count (enables cluster-fit rules)")
    p_explain.add_argument("--assume-records", type=int, default=None,
                           metavar="N",
                           help="assumed input record count when no real "
                                "input file is bound")

    p_opt = sub.add_parser(
        "optimize",
        help="apply the PAP08x rewrite passes and render the original -> "
             "optimized plan diff",
    )
    p_opt.add_argument("workflow", metavar="WORKFLOW_XML",
                       help="workflow configuration file")
    p_opt.add_argument("--input", "--input-config", action="append",
                       default=[], dest="input", metavar="FILE",
                       help="input-data configuration XML (repeatable)")
    p_opt.add_argument("--arg", action="append", default=[],
                       metavar="NAME=VALUE",
                       help="workflow argument (repeatable); binding the "
                            "real input path enables file-backed row counts")
    p_opt.add_argument("--format", choices=("text", "json"), default="text",
                       help="report format (default: text)")
    p_opt.add_argument("--ranks", type=int, default=None, metavar="N",
                       help="intended rank count")
    p_opt.add_argument("--assume-records", type=int, default=None, metavar="N",
                       help="assumed input record count when no real input "
                            "file is bound")
    p_opt.add_argument("--memory-budget", default=None, metavar="SIZE",
                       help="declared per-rank memory budget; column pruning "
                            "refuses to fire on out-of-core runs")

    p_plan = sub.add_parser("plan", help="print the planned job sequence")
    common(p_plan)
    p_plan.add_argument("--optimize", action="store_true",
                        help="apply the PAP08x rewrite passes and plan the "
                             "rewritten workflow")

    p_gen = sub.add_parser("codegen", help="emit the generated partitioner source")
    common(p_gen)
    p_gen.add_argument("-o", "--output", metavar="FILE",
                       help="write the source here (default: stdout)")

    p_run = sub.add_parser("run", help="partition an input file into part files")
    common(p_run)
    p_run.add_argument("--backend", default="serial",
                       choices=("serial", "mpi", "mapreduce", "process"))
    p_run.add_argument("--ranks", type=int, default=1, help="MPI ranks to simulate")
    p_run.add_argument("--stats", action="store_true",
                       help="print shuffle perf counters (records/bytes moved, "
                            "per-phase wall and virtual time)")
    p_run.add_argument("--optimize", action="store_true",
                       help="apply the PAP08x rewrite passes before running; "
                            "outputs are bit-identical, exchanges move fewer "
                            "bytes (see --stats)")
    p_run.add_argument("--faults", action="append", default=[], metavar="SPEC",
                       help="inject a fault (repeatable), e.g. "
                            "'crash:rank=1,job=0', 'drop:src=0,dst=2,p=0.5', "
                            "'delay:p=0.1,seconds=0.25', "
                            "'straggler:rank=3,factor=4'")
    p_run.add_argument("--chaos-seed", type=int, default=0, metavar="N",
                       help="seed for fault-injection draws and retry jitter")
    p_run.add_argument("--checkpoint-dir", metavar="DIR",
                       help="checkpoint job outputs here; a failed run "
                            "resumes from the last fully-committed job "
                            "(with --backend process this drives the "
                            "gang-restart after a worker crash)")
    p_run.add_argument("--max-attempts", type=int, default=None, metavar="N",
                       help="retry budget for faulty runs (default 5 when "
                            "fault tolerance is active)")
    p_run.add_argument("--crash-agent", default=None, metavar="SPEC",
                       help="chaos harness for --backend process: really "
                            "kill/hang/exit one rank at a job boundary, e.g. "
                            "'kill:rank=1,job=0,when=before,"
                            "marker=/tmp/fired' (the marker file makes it "
                            "fire once, so a checkpointed retry recovers)")
    p_run.add_argument("--deadlock-grace", type=float, default=None,
                       metavar="SECONDS",
                       help="blocked-wait budget before a DeadlockError "
                            "(default 60)")
    p_run.add_argument("--trace", metavar="FILE",
                       help="write a Chrome trace-event JSON of the run "
                            "(load in Perfetto or chrome://tracing)")
    p_run.add_argument("--metrics", metavar="FILE",
                       help="write the versioned metrics JSON "
                            "(counters, gauges, histograms, span stats)")
    p_run.add_argument("--timeline", action="store_true",
                       help="print a per-rank Gantt chart and the "
                            "critical-path summary")
    p_run.add_argument("--memory-budget", default=None, metavar="SIZE",
                       help="bound each rank's working set (e.g. 64MB); "
                            "the input streams in chunks and oversized "
                            "shuffles/sorts spill to run files")

    p_serve = sub.add_parser(
        "serve",
        help="run the streaming partition daemon: load the workflow once, "
             "hold partitions hot, accept incremental appends",
    )
    common(p_serve)
    p_serve.set_defaults(serve=True)  # turns on the PAP090 lint-gate rules
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="listen address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="listen port; 0 picks a free one and prints it")
    p_serve.add_argument("--backend", default="serial",
                         choices=("serial", "mpi", "mapreduce", "process"),
                         help="backend for the warm start and background "
                              "rebuilds (default: serial)")
    p_serve.add_argument("--ranks", type=int, default=1,
                         help="rank count for warm start and rebuilds")
    p_serve.add_argument("--rebalance-threshold", type=float, default=None,
                         metavar="RATIO",
                         help="skew/drift ratio past which an online "
                              "repartition is scheduled (default 0.5)")
    p_serve.add_argument("--max-pending", type=int, default=64, metavar="N",
                         help="append queue depth before 429-style rejection")
    p_serve.add_argument("--snapshot-dir", metavar="DIR",
                         help="publish versioned snapshots here; also "
                              "enables warm restart from the latest one")
    p_serve.add_argument("--metrics", metavar="FILE",
                         help="write the papar.serve metrics JSON on exit")
    return parser


def _load(ns: argparse.Namespace) -> tuple[PaPar, object, dict]:
    papar = PaPar()
    for path in ns.input_config:
        papar.register_input_file(path)
    workflow = papar.load_workflow_file(ns.workflow)
    return papar, workflow, _parse_arg_pairs(ns.arg)


def _explain_rule(code: str, fmt: str) -> int:
    """Print one catalog entry (``papar lint --explain PAPnnn``)."""
    import json

    from repro.analysis.rules import CATALOG

    normalized = code.strip().upper()
    spec = CATALOG.get(normalized)
    if spec is None:
        from difflib import get_close_matches

        close = get_close_matches(normalized, sorted(CATALOG), n=1)
        hint = f"; did you mean {close[0]}?" if close else ""
        print(f"error: unknown rule {code!r}{hint}", file=sys.stderr)
        return 2
    if fmt == "json":
        print(json.dumps(spec.explain_dict(), indent=2))
        return 0
    print(f"{spec.code} ({spec.name}) — {spec.severity.value}")
    print(f"  {spec.summary}")
    if spec.description:
        print(f"\n  {spec.description}")
    if spec.bad:
        print(f"\n  bad:  {spec.bad}")
    if spec.good:
        print(f"  good: {spec.good}")
    return 0


def cmd_lint(ns: argparse.Namespace) -> int:
    from repro.analysis.engine import Linter

    if ns.explain is not None:
        return _explain_rule(ns.explain, ns.format)
    if ns.workflow is None:
        print("error: a workflow file is required (or pass --explain PAPnnn)",
              file=sys.stderr)
        return 2
    result = Linter(
        ranks=ns.ranks,
        memory_budget=ns.memory_budget,
        assume_records=ns.assume_records,
        backend=ns.backend,
        faults=bool(ns.faults),
        checkpoint=bool(ns.checkpoint_dir),
        serve=ns.serve,
    ).lint_paths(
        ns.workflow,
        ns.input,
        args=_parse_arg_pairs(ns.arg),
        do_plan=not ns.no_plan,
    )
    if ns.format == "json":
        print(result.render_json())
    else:
        print(result.render_text())
    return result.exit_code(strict=ns.strict)


def cmd_explain(ns: argparse.Namespace) -> int:
    from repro.analysis.explain import explain_files

    report = explain_files(
        ns.workflow,
        ns.input,
        args=_parse_arg_pairs(ns.arg),
        ranks=ns.ranks,
        assume_records=ns.assume_records,
    )
    if ns.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    # advisories are INFO; only real configuration errors fail the command
    return report.lint.exit_code()


def cmd_optimize(ns: argparse.Namespace) -> int:
    from repro.analysis.optimize import optimize_files

    report = optimize_files(
        ns.workflow,
        ns.input,
        args=_parse_arg_pairs(ns.arg),
        ranks=ns.ranks,
        assume_records=ns.assume_records,
        memory_budget=ns.memory_budget,
    )
    if ns.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    # refusals are informational; only real configuration errors fail
    return report.before.lint.exit_code()


def _lint_gate(ns: argparse.Namespace, papar: PaPar) -> Optional[int]:
    """Refuse to proceed when the configuration has lint errors.

    Returns an exit code to bail with, or None to continue.  Warnings and
    infos never block; ``--no-lint`` skips the gate entirely.
    """
    if ns.no_lint:
        return None
    result = papar.lint_files(
        ns.workflow,
        ns.input_config,
        args=_parse_arg_pairs(ns.arg),
        ranks=getattr(ns, "ranks", None),
        memory_budget=getattr(ns, "memory_budget", None),
        backend=getattr(ns, "backend", None),
        # injection specs only: checkpoint/retry are recovery, legal everywhere
        faults=bool(getattr(ns, "faults", None)),
        checkpoint=bool(getattr(ns, "checkpoint_dir", None)),
        serve=bool(getattr(ns, "serve", False)),
    )
    if result.errors:
        for diag in result.errors:
            print(diag.render(), file=sys.stderr)
        print(
            f"lint: {len(result.errors)} error(s) in the configuration; "
            "fix them or pass --no-lint to proceed anyway",
            file=sys.stderr,
        )
        return 2
    return None


def cmd_plan(ns: argparse.Namespace) -> int:
    papar, workflow, args = _load(ns)
    gate = _lint_gate(ns, papar)
    if gate is not None:
        return gate
    if ns.optimize:
        optimized = papar.optimize(workflow, args)
        workflow = optimized.workflow
        summary = optimized.summary()
        print(
            f"optimizer: {len(summary['rewrites'])} rewrite(s), "
            f"{summary['exchanges_removed']} exchange(s) removed"
            + (", columns pruned" if summary["pruning"] else "")
        )
        for r in optimized.rewrites:
            print(f"  {r.code} {r.pass_name}: removed "
                  f"{', '.join(repr(x) for x in r.removed)} ({r.site})")
    plan = papar.plan(workflow, args)
    print(f"workflow {plan.workflow_id!r}: {len(plan.jobs)} job(s)")
    for i, job in enumerate(plan.jobs):
        src = job.source if job.source else "<workflow input>"
        print(
            f"  [{i}] {job.op_id} ({job.operator_name}) "
            f"<- {src}  -> {', '.join(job.output_paths)}"
        )
    return 0


def cmd_codegen(ns: argparse.Namespace) -> int:
    papar, workflow, args = _load(ns)
    plan = papar.plan(workflow, args)
    source = papar.generate_code(plan)
    if ns.output:
        with open(ns.output, "w", encoding="utf-8") as fh:
            fh.write(source)
        print(f"wrote {ns.output}")
    else:
        print(source)
    return 0


def _format_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover - unreachable


def print_optimizer_stats(result) -> None:
    """Render ``extra['optimizer']`` (passes fired, bytes saved)."""
    opt = result.extra.get("optimizer")
    if not opt:
        return
    passes = ", ".join(opt["passes_fired"]) or "none"
    print(
        f"optimizer: passes fired: {passes}; "
        f"{opt['operators_removed']} operator(s) and "
        f"{opt['exchanges_removed']} exchange(s) removed"
    )
    for r in opt.get("rewrites", []):
        print(f"  {r['code']} {r['pass']} at {r['site']}: "
              f"removed {', '.join(r['removed'])}")
    pruning = opt.get("pruning")
    if pruning:
        applied = "applied" if opt.get("pruning_applied") else "planned"
        print(
            f"  PAP083 column-pruning ({applied}): "
            f"{', '.join(pruning['pruned'])} pruned, rows "
            f"{pruning['full_row_bytes']}B -> {pruning['narrow_row_bytes']}B"
        )
    est = opt.get("est_bytes_saved")
    est_text = _format_bytes(int(est)) if est is not None else "?"
    print(
        f"  estimated bytes saved: {est_text}; measured shuffle payload: "
        f"{_format_bytes(opt['measured_bytes_moved'])}"
    )


def print_stats(result) -> None:
    """Render the perf-counter summary of a :class:`PartitionResult`."""
    print_optimizer_stats(result)
    perf = result.extra.get("perf")
    if not perf:
        print("stats: (no perf counters recorded by this backend)")
        return
    print(
        f"stats: {perf['records_moved']} records moved, "
        f"{_format_bytes(perf['bytes_moved'])} shuffled payload, "
        f"{_format_bytes(result.bytes_moved)} on the wire, "
        f"{result.messages} messages, {result.elapsed:.6f} s simulated"
    )
    phases = perf.get("phases", {})
    if phases:
        width = max(len(name) for name in phases)
        print(f"  {'phase'.ljust(width)}  {'wall(s)':>10}  {'virtual(s)':>10}")
        for name, t in phases.items():
            print(f"  {name.ljust(width)}  {t['wall_s']:>10.4f}  {t['virtual_s']:>10.4f}")
    spill = perf.get("spill")
    if spill:
        print(
            f"  spill: {spill.get('runs_written', 0)} run(s) written, "
            f"{spill.get('spilled_records', 0)} records / "
            f"{_format_bytes(spill.get('spilled_bytes', 0))} spilled, "
            f"merge fan-in {spill.get('max_merge_fanin', 0)}"
        )
    transport = perf.get("transport")
    if transport:
        print(
            f"  transport: {transport['kind']}, "
            f"{_format_bytes(transport['shm_bytes'])} zero-copy, "
            f"{_format_bytes(transport['pickle_bytes'])} pickled arrays, "
            f"{_format_bytes(transport['inline_bytes'])} inline objects; "
            f"{transport['segments_created']} segment(s) created, "
            f"{transport['segments_reused']} reused, "
            f"{transport['segments_unlinked']} unlinked"
        )


def print_fault_report(result) -> None:
    """Render ``extra['fault']`` (attempts, recovery, crashes, injections)."""
    fault = result.extra.get("fault")
    if not fault:
        return
    recovered = ", ".join(fault["recovered_jobs"]) or "none"
    if "backoff_wall_s" in fault:
        backoff = f"backoff {fault['backoff_wall_s']:.3f} s wall"
    else:
        backoff = f"backoff {fault['backoff_virtual_s']:.3f} s virtual"
    print(
        f"fault tolerance: {fault['attempts']} attempt(s), "
        f"recovered jobs: {recovered}, {backoff}"
    )
    for crash in fault.get("crashes", []):
        signal_name = f" ({crash['signal']})" if crash.get("signal") else ""
        print(
            f"  crash: attempt {crash['attempt']} rank {crash['rank']} "
            f"{crash['kind']}{signal_name}"
        )
    injected = fault.get("injected")
    if injected and injected.get("counts"):
        fired = ", ".join(f"{k}={v}" for k, v in sorted(injected["counts"].items()))
        print(f"  injected (seed {injected['seed']}): {fired}")
    for line in fault.get("failures", []):
        print(f"  {line}")


def cmd_run(ns: argparse.Namespace) -> int:
    papar, workflow, args = _load(ns)
    gate = _lint_gate(ns, papar)
    if gate is not None:
        return gate
    fault_tolerance: dict = {"chaos_seed": ns.chaos_seed}
    if ns.faults:
        fault_tolerance["faults"] = ns.faults
    if ns.checkpoint_dir:
        from repro.fault import DiskCheckpointStore

        fault_tolerance["checkpoint"] = DiskCheckpointStore(ns.checkpoint_dir)
    if ns.max_attempts is not None:
        from repro.fault import RetryPolicy

        fault_tolerance["retry"] = RetryPolicy(max_attempts=ns.max_attempts)
    if ns.deadlock_grace is not None:
        fault_tolerance["deadlock_grace"] = ns.deadlock_grace
    recorder = None
    if ns.trace or ns.metrics or ns.timeline:
        from repro.obs import Recorder

        recorder = Recorder()
        fault_tolerance["recorder"] = recorder
    armed = False
    if ns.crash_agent:
        # validate the spec up front, then arm the process backend through
        # its environment channel (read at gang spawn time, every attempt)
        import os

        from repro.mpi.supervisor import CrashAgent

        try:
            CrashAgent.from_spec(ns.crash_agent)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        os.environ["PAPAR_CRASH_AGENT"] = ns.crash_agent
        armed = True
    try:
        out = papar.partition_files(
            workflow, args, backend=ns.backend, num_ranks=ns.ranks,
            memory_budget=ns.memory_budget, optimize=ns.optimize,
            **fault_tolerance
        )
    finally:
        if armed:
            import os

            os.environ.pop("PAPAR_CRASH_AGENT", None)
    print(f"wrote {out.num_partitions} partition(s):")
    for path, part in zip(out.output_paths, out.partitions):
        print(f"  {path}  ({part.num_records} records)")
    print_fault_report(out.result)
    if ns.stats:
        print_stats(out.result)
    if recorder is not None:
        _export_observability(ns, recorder, out)
    return 0


def _export_observability(ns: argparse.Namespace, recorder, out) -> None:
    """Write the --trace/--metrics artifacts and print the --timeline."""
    from repro.obs import print_timeline, write_chrome_trace, write_metrics

    if ns.trace:
        write_chrome_trace(ns.trace, recorder)
        print(f"wrote trace {ns.trace}")
    if ns.metrics:
        run_info = {
            "workflow": ns.workflow,
            "backend": ns.backend,
            "ranks": ns.ranks,
            "partitions": out.num_partitions,
            "elapsed_virtual_s": out.result.elapsed,
        }
        write_metrics(ns.metrics, recorder, run=run_info)
        print(f"wrote metrics {ns.metrics}")
    if ns.timeline:
        print_timeline(recorder)


def cmd_serve(ns: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.obs import Recorder
    from repro.serve import ServeConfig, run_server

    papar, workflow, args = _load(ns)
    gate = _lint_gate(ns, papar)
    if gate is not None:
        return gate
    config = ServeConfig(
        host=ns.host,
        port=ns.port,
        max_pending=ns.max_pending,
        snapshot_dir=ns.snapshot_dir,
        backend=ns.backend,
        num_ranks=ns.ranks,
    )
    if ns.rebalance_threshold is not None:
        config.rebalance_threshold = ns.rebalance_threshold
    recorder = Recorder()

    def ready(host: str, port: int) -> None:
        # the smoke scripts and tests parse this line to find the port
        print(f"serving on {host}:{port}", flush=True)

    server = asyncio.run(
        run_server(papar, workflow, args, config=config,
                   recorder=recorder, ready=ready)
    )
    if ns.metrics:
        with open(ns.metrics, "w", encoding="utf-8") as fh:
            json.dump(server.metrics_doc(), fh, indent=2)
        print(f"wrote metrics {ns.metrics}")
    generation = server.state.current
    print(
        f"drained at generation "
        f"{generation.generation if generation else '<none>'} "
        f"({server.state.log_records} records)"
    )
    return 0


_COMMANDS = {
    "lint": cmd_lint,
    "explain": cmd_explain,
    "optimize": cmd_optimize,
    "plan": cmd_plan,
    "codegen": cmd_codegen,
    "run": cmd_run,
    "serve": cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    ns = parser.parse_args(argv)
    try:
        return _COMMANDS[ns.command](ns)
    except PaParError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
