"""Experiment harness shared by the ``benchmarks/`` suite.

Each table/figure benchmark produces rows (dicts), renders them as an
aligned text table, asserts the paper's *shape* (who wins, roughly by how
much), and records the table under ``benchmarks/results/`` so EXPERIMENTS.md
can cite actual artifacts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.errors import PaParError


def format_table(rows: Sequence[Mapping[str, Any]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as an aligned monospace table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())

    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    table = [[fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(cols)]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(cols, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in table]
    return "\n".join(lines)


@dataclass
class Experiment:
    """One reproduced table or figure."""

    id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        parts = [f"== {self.id}: {self.title} ==", format_table(self.rows)]
        parts += [f"note: {n}" for n in self.notes]
        return "\n".join(parts) + "\n"


class Reporter:
    """Writes experiment artifacts under a results directory."""

    def __init__(self, results_dir: str) -> None:
        self.results_dir = results_dir
        os.makedirs(results_dir, exist_ok=True)

    def record(self, experiment: Experiment) -> str:
        """Write the .txt table and .json rows; returns the rendered table."""
        text = experiment.render()
        stem = experiment.id.lower().replace(" ", "_").replace("(", "").replace(")", "")
        with open(os.path.join(self.results_dir, f"{stem}.txt"), "w") as fh:
            fh.write(text)
        with open(os.path.join(self.results_dir, f"{stem}.json"), "w") as fh:
            json.dump(
                {"id": experiment.id, "title": experiment.title, "rows": experiment.rows,
                 "notes": experiment.notes},
                fh,
                indent=2,
                default=str,
            )
        print("\n" + text)
        return text


def shape(condition: bool, claim: str) -> None:
    """Assert one qualitative claim of the paper, with a readable message."""
    if not condition:
        raise PaParError(f"paper-shape violation: {claim}")
