"""Experiment harness for the benchmarks suite (tables, shape assertions)."""

from repro.bench.harness import Experiment, Reporter, format_table, shape

__all__ = ["Experiment", "Reporter", "format_table", "shape"]
