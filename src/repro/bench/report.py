"""Aggregate recorded experiments into one report.

``python -m repro.bench.report [results_dir]`` prints every table recorded
by the benchmark suite (default: ``benchmarks/results``) in experiment-id
order — the quick way to eyeball the whole reproduction after a
``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Optional

from repro.bench.harness import Experiment

DEFAULT_DIR = os.path.join("benchmarks", "results")


def load_experiments(results_dir: str) -> list[Experiment]:
    """Parse every recorded ``.json`` artifact back into Experiments."""
    out = []
    if not os.path.isdir(results_dir):
        return out
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(results_dir, name)) as fh:
            payload = json.load(fh)
        exp = Experiment(id=payload["id"], title=payload["title"], rows=payload["rows"])
        exp.notes = payload.get("notes", [])
        out.append(exp)
    return out


def render_report(results_dir: str = DEFAULT_DIR) -> str:
    """One text document with every recorded experiment table."""
    experiments = load_experiments(results_dir)
    if not experiments:
        return f"(no recorded experiments under {results_dir!r} — run pytest benchmarks/ first)"
    parts = [f"# PaPar reproduction report — {len(experiments)} experiments\n"]
    parts += [exp.render() for exp in experiments]
    return "\n".join(parts)


def main(argv: Optional[list[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    results_dir = argv[0] if argv else DEFAULT_DIR
    print(render_report(results_dir))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
