"""Exception hierarchy for the PaPar reproduction.

Every error raised by this package derives from :class:`PaParError` so that
callers can catch framework failures without also swallowing programming
errors (``TypeError`` etc. still propagate untouched).
"""

from __future__ import annotations


class PaParError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(PaParError):
    """A configuration file is malformed or references unknown entities."""


class SchemaError(ConfigError):
    """An input-data description (record schema) is invalid."""


class WorkflowError(ConfigError):
    """A workflow configuration is invalid (unknown operator, bad ``$ref``...)."""


class OperatorError(PaParError):
    """An operator was invoked with invalid arguments or data."""


class PolicyError(PaParError):
    """A distribution or split policy is invalid for the given data."""


class FormatError(PaParError):
    """Data could not be encoded/decoded in the requested record format."""


class MPIError(PaParError):
    """Errors from the simulated MPI runtime."""


class DeadlockError(MPIError):
    """A rank waited past the fabric's ``deadlock_grace`` for a message.

    Carries the blocked ranks' pending ``(source, tag)`` state so that a
    stuck collective is diagnosable instead of hanging the run forever.
    """

    def __init__(self, message: str, rank: int = -1, pending: dict | None = None) -> None:
        super().__init__(message)
        #: the rank that gave up waiting
        self.rank = rank
        #: snapshot of blocked ranks -> (source, tag) at the time of the error
        self.pending = dict(pending or {})


class WorkerCrash(MPIError):
    """A rank process died or froze underneath the process-backend supervisor.

    Raised by :class:`repro.mpi.supervisor.Supervisor` when a worker's
    sentinel fires without an exit message (killed by a signal, nonzero
    ``os._exit``, silent death) or its heartbeat lane goes quiet (hang).
    Carries enough structure for the gang-restart report printed by the CLI.
    """

    def __init__(
        self,
        message: str,
        rank: int = -1,
        kind: str = "signal",
        exitcode: int | None = None,
        signal_name: str | None = None,
    ) -> None:
        super().__init__(message)
        #: the rank whose process died or hung
        self.rank = rank
        #: one of ``"signal"``, ``"exit"``, ``"silent"``, ``"hang"``
        self.kind = kind
        #: raw ``Process.exitcode`` (negative = killed by that signal)
        self.exitcode = exitcode
        #: symbolic signal name (``"SIGKILL"``...) when killed by a signal
        self.signal_name = signal_name

    def as_report(self) -> dict:
        """The crash as a plain dict for ``extra["fault"]["crashes"]``."""
        return {
            "rank": self.rank,
            "kind": self.kind,
            "exitcode": self.exitcode,
            "signal": self.signal_name,
            "detail": str(self),
        }


class InjectedFault(MPIError):
    """A failure deliberately injected by the fault-injection layer."""


class CorruptMessageError(MPIError):
    """A message failed its transport checksum (injected corruption)."""


class FaultToleranceError(PaParError):
    """The fault-tolerance layer was misconfigured or exhausted its retries."""


class MapReduceError(PaParError):
    """Errors from the MapReduce engine."""


class CodegenError(PaParError):
    """The code generator could not emit a partitioner for the workflow."""


class ClusterError(PaParError):
    """The cluster cost model was configured inconsistently."""
