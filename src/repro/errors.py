"""Exception hierarchy for the PaPar reproduction.

Every error raised by this package derives from :class:`PaParError` so that
callers can catch framework failures without also swallowing programming
errors (``TypeError`` etc. still propagate untouched).
"""

from __future__ import annotations


class PaParError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(PaParError):
    """A configuration file is malformed or references unknown entities."""


class SchemaError(ConfigError):
    """An input-data description (record schema) is invalid."""


class WorkflowError(ConfigError):
    """A workflow configuration is invalid (unknown operator, bad ``$ref``...)."""


class OperatorError(PaParError):
    """An operator was invoked with invalid arguments or data."""


class PolicyError(PaParError):
    """A distribution or split policy is invalid for the given data."""


class FormatError(PaParError):
    """Data could not be encoded/decoded in the requested record format."""


class MPIError(PaParError):
    """Errors from the simulated MPI runtime."""


class MapReduceError(PaParError):
    """Errors from the MapReduce engine."""


class CodegenError(PaParError):
    """The code generator could not emit a partitioner for the workflow."""


class ClusterError(PaParError):
    """The cluster cost model was configured inconsistently."""
