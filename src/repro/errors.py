"""Exception hierarchy for the PaPar reproduction.

Every error raised by this package derives from :class:`PaParError` so that
callers can catch framework failures without also swallowing programming
errors (``TypeError`` etc. still propagate untouched).
"""

from __future__ import annotations


class PaParError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(PaParError):
    """A configuration file is malformed or references unknown entities."""


class SchemaError(ConfigError):
    """An input-data description (record schema) is invalid."""


class WorkflowError(ConfigError):
    """A workflow configuration is invalid (unknown operator, bad ``$ref``...)."""


class OperatorError(PaParError):
    """An operator was invoked with invalid arguments or data."""


class PolicyError(PaParError):
    """A distribution or split policy is invalid for the given data."""


class FormatError(PaParError):
    """Data could not be encoded/decoded in the requested record format."""


class MPIError(PaParError):
    """Errors from the simulated MPI runtime."""


class DeadlockError(MPIError):
    """A rank waited past the fabric's ``deadlock_grace`` for a message.

    Carries the blocked ranks' pending ``(source, tag)`` state so that a
    stuck collective is diagnosable instead of hanging the run forever.
    """

    def __init__(self, message: str, rank: int = -1, pending: dict | None = None) -> None:
        super().__init__(message)
        #: the rank that gave up waiting
        self.rank = rank
        #: snapshot of blocked ranks -> (source, tag) at the time of the error
        self.pending = dict(pending or {})


class InjectedFault(MPIError):
    """A failure deliberately injected by the fault-injection layer."""


class CorruptMessageError(MPIError):
    """A message failed its transport checksum (injected corruption)."""


class FaultToleranceError(PaParError):
    """The fault-tolerance layer was misconfigured or exhausted its retries."""


class MapReduceError(PaParError):
    """Errors from the MapReduce engine."""


class CodegenError(PaParError):
    """The code generator could not emit a partitioner for the workflow."""


class ClusterError(PaParError):
    """The cluster cost model was configured inconsistently."""
