"""Split policies: route entries to one of several outputs by a predicate.

The hybrid-cut workflow (Figure 10) writes::

    <param name="policy" type="SplitPolicy" value="{>=, $threshold},{<, $threshold}"/>

i.e. output 0 receives entries whose key is ``>= threshold`` (high-degree)
and output 1 those ``< threshold`` (low-degree).  The grammar is a
comma-separated list of ``{op, operand}`` conditions, one per output path.
"""

from __future__ import annotations

import operator
import re
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import PolicyError

_OPS: dict[str, Callable[[Any, Any], Any]] = {
    ">=": operator.ge,
    "<=": operator.le,
    ">": operator.gt,
    "<": operator.lt,
    "==": operator.eq,
    "!=": operator.ne,
}

_COND_RE = re.compile(r"\{\s*(>=|<=|==|!=|>|<)\s*,\s*([^{}]+?)\s*\}")


@dataclass(frozen=True)
class SplitCondition:
    """One ``{op, operand}`` clause."""

    op: str
    operand: float

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise PolicyError(f"unknown split comparison {self.op!r}")

    def matches(self, values: np.ndarray) -> np.ndarray:
        """Vectorized predicate over the key column."""
        return _OPS[self.op](values, self.operand)

    def matches_scalar(self, value: Any) -> bool:
        """Scalar predicate (used by the static analyzer's coverage probe)."""
        return bool(_OPS[self.op](value, self.operand))


class SplitPolicy:
    """An ordered list of conditions, one per output; first match wins."""

    def __init__(self, conditions: Sequence[SplitCondition]) -> None:
        if not conditions:
            raise PolicyError("split policy needs at least one condition")
        self.conditions = list(conditions)

    @property
    def num_outputs(self) -> int:
        return len(self.conditions)

    @classmethod
    def parse(cls, text: str) -> "SplitPolicy":
        """Parse the configuration grammar ``{op, operand},{op, operand},...``."""
        matches = _COND_RE.findall(text)
        if not matches:
            raise PolicyError(f"cannot parse split policy {text!r}")
        conditions = []
        for op, operand in matches:
            try:
                value = float(operand)
            except ValueError as exc:
                raise PolicyError(
                    f"split operand {operand!r} is not numeric (unresolved $variable?)"
                ) from exc
            conditions.append(SplitCondition(op, value))
        return cls(conditions)

    def route(self, values: np.ndarray) -> np.ndarray:
        """Output index per entry; raises if an entry matches no condition."""
        values = np.asarray(values)
        out = np.full(len(values), -1, dtype=np.int64)
        for i, cond in enumerate(self.conditions):
            mask = (out == -1) & cond.matches(values)
            out[mask] = i
        if np.any(out == -1):
            bad = values[out == -1][:5]
            raise PolicyError(
                f"{int((out == -1).sum())} entries match no split condition "
                f"(e.g. key values {bad.tolist()})"
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        clauses = ",".join(f"{{{c.op}, {c.operand:g}}}" for c in self.conditions)
        return f"SplitPolicy({clauses})"
