"""Distribution and split policies, formalized as stride permutations.

See :mod:`repro.policies.permutation` for the ``L_m^{km}`` machinery
(Figure 6), :mod:`repro.policies.distr` for the cyclic / block /
graphVertexCut distribution policies, and :mod:`repro.policies.split_policy`
for the threshold routing grammar of the ``split`` operator.
"""

from repro.policies.distr import (
    BlockPolicy,
    CyclicPolicy,
    DistributionPolicy,
    GraphVertexCutPolicy,
    get_policy,
    register_policy,
)
from repro.policies.permutation import (
    apply_permutation_matrix,
    block_permutation_indices,
    cyclic_permutation_indices,
    partition_counts,
    stride_permutation_indices,
    stride_permutation_matrix,
)
from repro.policies.split_policy import SplitCondition, SplitPolicy

__all__ = [
    "DistributionPolicy",
    "CyclicPolicy",
    "BlockPolicy",
    "GraphVertexCutPolicy",
    "get_policy",
    "register_policy",
    "stride_permutation_indices",
    "stride_permutation_matrix",
    "apply_permutation_matrix",
    "cyclic_permutation_indices",
    "block_permutation_indices",
    "partition_counts",
    "SplitPolicy",
    "SplitCondition",
]
