"""Stride-permutation matrices (paper Section III-B, Figure 6).

PaPar formalizes distribution policies as the DSL permutation operator

    L_m^{km} : x[i*k + j]  ->  x[j*m + i],   0 <= i < m, 0 <= j < k

a stride-by-m permutation of a km-element vector.  ``L_2^4`` is the cyclic
redistribution of Figure 6(a); ``L_n^n`` is the identity used by the block
policy in Figure 6(b).

Two equivalent realizations are provided (and tested equal):

* :func:`stride_permutation_indices` — the O(n) index form every mapper
  applies locally at runtime;
* :func:`stride_permutation_matrix` — the explicit sparse permutation matrix,
  applied as a matrix-vector multiplication, matching the paper's
  formalization literally.

When the partition count does not divide the entry count, the paper's
example (Figure 9 uses ``L_3^4``) shows the intended semantics: plain
round-robin dealing.  :func:`cyclic_permutation_indices` implements that
general case and reduces to ``L_m^n`` exactly when ``m | n``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import PolicyError


def stride_permutation_indices(n: int, m: int) -> np.ndarray:
    """Index form of ``L_m^n``: returns ``perm`` with ``y = x[perm]``.

    Requires ``m`` to divide ``n`` (the textbook definition).
    """
    if n < 0:
        raise PolicyError(f"vector length must be >= 0, got {n!r}")
    if m < 1:
        raise PolicyError(f"stride must be >= 1, got {m!r}")
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n % m != 0:
        raise PolicyError(f"L_m^n requires m | n; got n={n}, m={m}")
    k = n // m
    # y[j*m + i] = x[i*k + j]  <=>  y = x.reshape(m, k).T.ravel()
    return np.arange(n, dtype=np.int64).reshape(m, k).T.reshape(-1)


def stride_permutation_matrix(n: int, m: int) -> sp.csr_matrix:
    """Explicit sparse permutation matrix ``P`` with ``y = P @ x``."""
    perm = stride_permutation_indices(n, m)
    data = np.ones(n, dtype=np.int8)
    rows = np.arange(n, dtype=np.int64)
    return sp.csr_matrix((data, (rows, perm)), shape=(n, n))


def apply_permutation_matrix(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Matrix-vector multiplication form of the permutation.

    Works for any element payload: applied to the *index vector* so entries
    of arbitrary record types can be gathered afterwards.
    """
    if matrix.shape[0] != len(x):
        raise PolicyError(
            f"matrix is {matrix.shape[0]}x{matrix.shape[1]} but vector has {len(x)} entries"
        )
    return matrix @ x


def cyclic_permutation_indices(n: int, num_partitions: int) -> np.ndarray:
    """Round-robin dealing order for ``n`` entries into ``num_partitions``.

    The permutation groups each partition's entries contiguously, partition 0
    first — the general-case ``L_P^n`` of Figure 9 (which deals 4 entries to
    3 partitions).  When ``num_partitions | n`` this equals
    :func:`stride_permutation_indices`.
    """
    if n < 0:
        raise PolicyError(f"vector length must be >= 0, got {n!r}")
    if num_partitions < 1:
        raise PolicyError(f"num_partitions must be >= 1, got {num_partitions!r}")
    idx = np.arange(n, dtype=np.int64)
    # stable sort by destination partition keeps round-robin order inside each
    return idx[np.argsort(idx % num_partitions, kind="stable")]


def block_permutation_indices(n: int) -> np.ndarray:
    """The block policy's identity permutation ``L_n^n`` (Figure 6(b))."""
    if n < 0:
        raise PolicyError(f"vector length must be >= 0, got {n!r}")
    return np.arange(n, dtype=np.int64)


def partition_counts(n: int, num_partitions: int, policy: str) -> np.ndarray:
    """Entries per partition after permutation, for contiguous dealing.

    Both policies balance the remainder onto the first ``n % P`` partitions:
    cyclic because round-robin dealing wraps, block by convention.
    """
    if policy not in ("cyclic", "block"):
        raise PolicyError(f"unknown policy {policy!r}")
    if num_partitions < 1:
        raise PolicyError(f"num_partitions must be >= 1, got {num_partitions!r}")
    if n < 0:
        raise PolicyError(f"entry count must be >= 0, got {n!r}")
    base, extra = divmod(n, num_partitions)
    return np.array(
        [base + (1 if p < extra else 0) for p in range(num_partitions)], dtype=np.int64
    )
