"""Distribution policies: which output partition receives each entry.

The paper's ``distribute`` operator is the one operator that does not follow
the key-value concept; it formalizes its policy as a permutation matrix
(generated at runtime from the ``policy`` and ``numPartitions`` parameters,
so the operator's code never changes — Section III-B).

Policies:

* ``cyclic`` (alias ``roundRobin``) — deal entries round-robin, Figure 6(a);
* ``block`` — contiguous chunks, Figure 6(b);
* ``graphVertexCut`` — the hybrid-cut distribution: applied per input stream
  (packed low-degree groups and flat high-degree edges), cyclic within each
  stream, exactly the two matrices ``L_3^4`` / ``L_3^3`` of Figure 11.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import PolicyError
from repro.policies.permutation import (
    block_permutation_indices,
    cyclic_permutation_indices,
    partition_counts,
)


class DistributionPolicy:
    """Maps entry positions to partitions via a permutation + counts."""

    name: str = "abstract"

    def permutation(self, n: int, num_partitions: int) -> np.ndarray:
        """Permutation indices putting each partition's entries contiguously."""
        raise NotImplementedError

    def counts(self, n: int, num_partitions: int) -> np.ndarray:
        """Entries per partition, aligned with :meth:`permutation` order."""
        raise NotImplementedError

    def assign(self, n: int, num_partitions: int) -> np.ndarray:
        """Partition id of each entry position (derived from the permutation)."""
        perm = self.permutation(n, num_partitions)
        counts = self.counts(n, num_partitions)
        owners = np.empty(n, dtype=np.int64)
        # scatter each partition's id over its contiguous permutation slice
        # in one vectorized repeat instead of a per-partition loop
        owners[perm] = np.repeat(np.arange(num_partitions, dtype=np.int64), counts)
        return owners


class CyclicPolicy(DistributionPolicy):
    """Round-robin dealing (the muBLASTP optimized policy)."""

    name = "cyclic"

    def permutation(self, n: int, num_partitions: int) -> np.ndarray:
        return cyclic_permutation_indices(n, num_partitions)

    def counts(self, n: int, num_partitions: int) -> np.ndarray:
        return partition_counts(n, num_partitions, "cyclic")


class BlockPolicy(DistributionPolicy):
    """Contiguous chunks (the muBLASTP default policy)."""

    name = "block"

    def permutation(self, n: int, num_partitions: int) -> np.ndarray:
        if num_partitions < 1:
            raise PolicyError(f"num_partitions must be >= 1, got {num_partitions!r}")
        return block_permutation_indices(n)

    def counts(self, n: int, num_partitions: int) -> np.ndarray:
        return partition_counts(n, num_partitions, "block")


class GraphVertexCutPolicy(CyclicPolicy):
    """Hybrid-cut distribution: cyclic dealing applied per input stream.

    Low-degree entries arrive packed (one entry = a vertex with all its
    in-edges, kept together on one partition); high-degree entries arrive
    unpacked (one entry = one edge, spread across partitions).  The
    distribute operator applies this same cyclic policy to each stream, so
    the class only renames :class:`CyclicPolicy`; stream handling lives in
    the ``Distribute`` operator.
    """

    name = "graphVertexCut"


_POLICIES: dict[str, Callable[[], DistributionPolicy]] = {
    "cyclic": CyclicPolicy,
    "roundrobin": CyclicPolicy,
    "block": BlockPolicy,
    "graphvertexcut": GraphVertexCutPolicy,
}


def get_policy(name: str) -> DistributionPolicy:
    """Look up a distribution policy by its configuration-file name."""
    factory = _POLICIES.get(name.strip().lower())
    if factory is None:
        raise PolicyError(f"unknown distribution policy {name!r}; known: {sorted(_POLICIES)}")
    return factory()


def register_policy(name: str, factory: Callable[[], DistributionPolicy]) -> None:
    """Register a user-defined distribution policy (extensibility hook)."""
    key = name.strip().lower()
    if key in _POLICIES:
        raise PolicyError(f"policy {name!r} is already registered")
    _POLICIES[key] = factory
