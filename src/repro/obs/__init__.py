"""Unified observability: spans, metrics, and trace export for a run.

One :class:`Recorder` observes a whole execution across both SPMD runtimes
and the MapReduce engine: a span tree (plan → job → operator phase →
shuffle, with per-rank children carrying virtual *and* wall time), instant
events (fault firings, retries), and metrics (counters / gauges /
histograms).  Exporters turn the recorder into a Chrome trace-event file
(Perfetto / ``chrome://tracing``), a versioned metrics JSON, or a terminal
Gantt / critical-path summary — ``python -m repro run --trace out.json
--metrics metrics.json --timeline``.

The layer is strictly opt-in: without a recorder the runtimes never import
this package and the hot path is untouched (see
``tests/obs/test_zero_overhead.py``).  See ``docs/observability.md`` for
the walkthrough and the metrics schema.
"""

from repro.obs.adapters import (
    record_fault_report,
    record_perf,
    record_rebalance,
    record_serve_request,
    record_tracer,
)
from repro.obs.export import (
    DRIVER_PID,
    METRICS_VERSION,
    SERVE_METRICS_VERSION,
    chrome_trace,
    metrics_json,
    serve_metrics_json,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.span import InstantEvent, Recorder, Span, maybe_span
from repro.obs.timeline import print_timeline, render_timeline

__all__ = [
    "Recorder",
    "Span",
    "InstantEvent",
    "maybe_span",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_json",
    "write_metrics",
    "METRICS_VERSION",
    "DRIVER_PID",
    "render_timeline",
    "print_timeline",
    "record_tracer",
    "record_perf",
    "record_fault_report",
    "record_serve_request",
    "record_rebalance",
    "serve_metrics_json",
    "SERVE_METRICS_VERSION",
]
