"""Exporters: Chrome trace-event JSON and the versioned metrics JSON.

Two artifacts, one :class:`~repro.obs.span.Recorder`:

* :func:`chrome_trace` — the `Trace Event Format
  <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
  dict that Perfetto / ``chrome://tracing`` load directly.  Every rank is
  one *process* (``pid`` == rank number) so the UI shows one track per
  rank; driver-side spans get their own process.  Spans become complete
  events (``ph: "X"``), instant events become ``ph: "i"``.
* :func:`metrics_json` — a versioned, JSON-stable metrics document
  (counters / gauges / histograms plus span roll-ups), the same contract
  style as the lint JSON (``version`` bumps on breaking changes; schema
  documented in ``docs/observability.md``).
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.obs.span import Recorder

#: bump on breaking changes to the metrics document layout
METRICS_VERSION = 1

#: ``pid`` used for driver-side (rank-less) spans in the Chrome trace
DRIVER_PID = 1_000_000


def _time_basis(recorder: Recorder) -> str:
    """Virtual time when any span carries it, else wall time.

    Runs without a cluster model leave every virtual clock at zero; the
    exporters silently fall back to wall time so the trace stays readable.
    """
    return "virtual" if recorder.makespan_virtual() > 0.0 else "wall"


def _span_times(span: Any, basis: str) -> tuple[float, float]:
    if basis == "virtual":
        return span.start_virtual, span.end_virtual
    return span.start_wall, span.end_wall


def chrome_trace(recorder: Recorder, time_basis: Optional[str] = None) -> dict[str, Any]:
    """The Chrome trace-event dict for ``recorder``.

    ``time_basis`` forces ``"virtual"`` or ``"wall"`` timestamps; by default
    virtual time is used whenever a cluster model advanced any clock.
    Timestamps are microseconds, as the format requires.
    """
    basis = time_basis or _time_basis(recorder)
    if basis not in ("virtual", "wall"):
        raise ValueError(f"time_basis must be 'virtual' or 'wall', got {basis!r}")
    events: list[dict[str, Any]] = []
    pids = set()
    for span in recorder.spans:
        pid = span.rank if span.rank is not None else DRIVER_PID
        pids.add(pid)
        start, end = _span_times(span, basis)
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "ts": start * 1e6,
            "dur": max(end - start, 0.0) * 1e6,
            "pid": pid,
            "tid": 0,
        }
        if span.attrs:
            event["args"] = dict(span.attrs)
        events.append(event)
    for inst in recorder.instants:
        pid = inst.rank if inst.rank is not None else DRIVER_PID
        pids.add(pid)
        ts = inst.ts_virtual if basis == "virtual" else inst.ts_wall
        event = {
            "name": inst.name,
            "cat": inst.category or "mark",
            "ph": "i",
            "ts": ts * 1e6,
            "pid": pid,
            "tid": 0,
            "s": "p",  # process-scoped instant: draws across the rank's track
        }
        if inst.attrs:
            event["args"] = dict(inst.attrs)
        events.append(event)
    # name the tracks: "rank N" processes sorted by rank, driver last
    for pid in sorted(pids):
        name = "driver" if pid == DRIVER_PID else f"rank {pid}"
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": name}}
        )
        events.append(
            {"name": "process_sort_index", "ph": "M", "pid": pid, "tid": 0,
             "args": {"sort_index": -1 if pid == DRIVER_PID else pid}}
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": "papar-obs", "time_basis": basis},
    }


def write_chrome_trace(
    path: str, recorder: Recorder, time_basis: Optional[str] = None
) -> dict[str, Any]:
    """Write :func:`chrome_trace` to ``path``; returns the exported dict."""
    doc = chrome_trace(recorder, time_basis=time_basis)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


# -- metrics ----------------------------------------------------------------


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    idx = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
    return samples[idx]


def _keyed_metric(
    items: dict[tuple[str, Optional[int]], float],
) -> dict[str, dict[str, Any]]:
    """Fold ``(name, rank) -> value`` into ``{name: {total, per_rank}}``."""
    out: dict[str, dict[str, Any]] = {}
    for (name, rank), value in sorted(items.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))):
        slot = out.setdefault(name, {"total": 0, "per_rank": {}})
        slot["total"] += value
        if rank is not None:
            slot["per_rank"][str(rank)] = value
    return out


def metrics_json(
    recorder: Recorder, run: Optional[dict[str, Any]] = None
) -> dict[str, Any]:
    """The versioned metrics document for ``recorder``.

    ``run`` attaches run-level facts from a
    :class:`~repro.core.runtime.PartitionResult` (simulated elapsed time,
    fabric bytes/messages, perf-counter totals) under the ``"run"`` key.
    The contract is pinned by ``tests/obs/test_metrics_contract.py``.
    """
    histograms: dict[str, dict[str, Any]] = {}
    for name, samples in sorted(recorder.histograms.items()):
        ordered = sorted(samples)
        histograms[name] = {
            "count": len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(ordered) / len(ordered),
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "p99": _percentile(ordered, 0.99),
        }
    per_rank_busy: dict[str, float] = {}
    for rank in recorder.ranks():
        top = [
            s for s in recorder.rank_spans(rank)
            if s.parent_id is None or s.category == "job"
        ]
        per_rank_busy[str(rank)] = sum(s.virtual_duration for s in top)
    return {
        "schema": "papar.metrics",
        "version": METRICS_VERSION,
        "time_basis": _time_basis(recorder),
        "counters": _keyed_metric(recorder.counters),
        "gauges": _keyed_metric(recorder.gauges),
        "histograms": histograms,
        "spans": {
            "count": len(recorder.spans),
            "instants": len(recorder.instants),
            "makespan_virtual_s": recorder.makespan_virtual(),
            "makespan_wall_s": recorder.makespan_wall(),
            "per_rank_busy_virtual_s": per_rank_busy,
        },
        "run": dict(run or {}),
    }


#: bump on breaking changes to the serve metrics document layout
SERVE_METRICS_VERSION = 1

#: the histogram stat keys every serve latency block carries
_EMPTY_HIST = {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0,
               "p50": 0.0, "p95": 0.0, "p99": 0.0}


def serve_metrics_json(
    recorder: Recorder, server: Optional[dict[str, Any]] = None
) -> dict[str, Any]:
    """The versioned ``papar.serve`` metrics document for a daemon recorder.

    A serving-shaped view over the generic :func:`metrics_json` stream:
    per-verb request counts, admission-control rejections, queue depth,
    rebalance events, and the append-latency distribution (p50/p95/p99).
    ``server`` attaches live daemon facts (generation, partition counts,
    pending queue) under the ``"server"`` key.  The layout is pinned by
    ``tests/obs/test_metrics_contract.py``.
    """
    base = metrics_json(recorder)
    counters = base["counters"]
    requests = {
        name[len("serve.requests."):]: slot["total"]
        for name, slot in counters.items()
        if name.startswith("serve.requests.")
    }
    latency = base["histograms"].get("serve.append_latency_ms", dict(_EMPTY_HIST))
    return {
        "schema": "papar.serve",
        "version": SERVE_METRICS_VERSION,
        "requests": requests,
        "rejected": counters.get("serve.rejected", {}).get("total", 0),
        "appended_records": counters.get("serve.appended_records", {}).get("total", 0),
        "coalesced_batches": counters.get("serve.coalesced_batches", {}).get("total", 0),
        "rebalances": counters.get("serve.rebalances", {}).get("total", 0),
        "snapshots": counters.get("serve.snapshots", {}).get("total", 0),
        "queue_depth": base["gauges"].get("serve.queue_depth", {}).get("total", 0),
        "append_latency_ms": latency,
        "server": dict(server or {}),
        "metrics": base,
    }


def write_metrics(
    path: str, recorder: Recorder, run: Optional[dict[str, Any]] = None
) -> dict[str, Any]:
    """Write :func:`metrics_json` to ``path``; returns the exported dict."""
    doc = metrics_json(recorder, run=run)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    return doc
