"""Terminal Gantt rendering and the critical-path summary.

:func:`render_timeline` turns a :class:`~repro.obs.span.Recorder` into the
text block printed by ``python -m repro run --timeline``: one Gantt bar per
rank over the run's makespan, the busiest rank, per-rank idle fractions
(including the share of idle spent blocked at barriers, measured at the
communicator's clock-merge points), the top-5 longest spans, and the
critical path — the job chain of the rank that finishes last, which is the
chain any speedup must shorten.

Like the exporters, the renderer prefers virtual time and falls back to
wall time when no cluster model advanced any clock.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.span import Recorder, Span

#: Gantt cell glyphs, by span category (fallback '#')
_GLYPHS = {"sort": "s", "group": "g", "split": "/", "distribute": "d", "shuffle": "x"}


def _basis(recorder: Recorder) -> str:
    return "virtual" if recorder.makespan_virtual() > 0.0 else "wall"


def _times(span: Span, basis: str) -> tuple[float, float]:
    if basis == "virtual":
        return span.start_virtual, span.end_virtual
    return span.start_wall, span.end_wall


def _bar(spans: list[Span], basis: str, makespan: float, width: int) -> str:
    cells = [" "] * width
    for span in spans:
        start, end = _times(span, basis)
        lo = int(start / makespan * width)
        hi = max(lo + 1, int(end / makespan * width + 0.5))
        glyph = _GLYPHS.get(span.attrs.get("operator", span.category), "#")
        for i in range(lo, min(hi, width)):
            cells[i] = glyph
    return "".join(cells)


def _job_spans(recorder: Recorder, rank: int) -> list[Span]:
    """A rank's top-level job spans, ordered by start time."""
    spans = [s for s in recorder.rank_spans(rank) if s.category == "job"]
    return sorted(spans, key=lambda s: (s.start_virtual, s.start_wall, s.span_id))


def render_timeline(recorder: Recorder, width: int = 64) -> str:
    """The full terminal summary: Gantt, idle table, top spans, critical path."""
    basis = _basis(recorder)
    makespan = (
        recorder.makespan_virtual() if basis == "virtual" else recorder.makespan_wall()
    )
    ranks = recorder.ranks()
    lines = [f"timeline ({basis} time, makespan {makespan:.6f}s)"]
    if not ranks or makespan <= 0.0:
        lines.append("  (no rank spans recorded)")
        return "\n".join(lines)

    # -- Gantt: one bar per rank over [0, makespan) -------------------------
    busy: dict[int, float] = {}
    for rank in ranks:
        spans = _job_spans(recorder, rank)
        start_end = [_times(s, basis) for s in spans]
        busy[rank] = sum(e - s for s, e in start_end)
        lines.append(f"  rank {rank:>3} |{_bar(spans, basis, makespan, width)}|")
    legend = "  ".join(f"{g}={name}" for name, g in _GLYPHS.items())
    lines.append(f"  legend: {legend}  #=other")

    # -- busiest rank and idle fractions ------------------------------------
    busiest = max(busy, key=lambda r: (busy[r], -r))
    lines.append(
        f"busiest rank: {busiest} "
        f"({busy[busiest]:.6f}s busy, {busy[busiest] / makespan:.1%} of makespan)"
    )
    barrier_idle = recorder.counter_total("idle.barrier_s")
    total_idle = sum(makespan - b for b in busy.values())
    lines.append(
        f"idle: {total_idle / (makespan * len(ranks)):.1%} of total rank-time"
        + (
            f", of which {barrier_idle:.6f}s blocked at barriers"
            if barrier_idle > 0
            else ""
        )
    )

    # -- top-5 spans by duration ---------------------------------------------
    def duration(span: Span) -> float:
        s, e = _times(span, basis)
        return e - s

    candidates = [s for s in recorder.spans if s.rank is not None]
    top = sorted(candidates, key=lambda s: (-duration(s), s.span_id))[:5]
    if top:
        lines.append("top spans:")
        for span in top:
            lines.append(
                f"  {duration(span):>12.6f}s  rank {span.rank}  "
                f"{span.category}:{span.name}"
            )

    # -- critical path: the job chain of the last-finishing rank --------------
    def rank_end(rank: int) -> float:
        return max((_times(s, basis)[1] for s in recorder.rank_spans(rank)), default=0.0)

    critical_rank = max(ranks, key=lambda r: (rank_end(r), -r))
    chain = _job_spans(recorder, critical_rank)
    if chain:
        lines.append(f"critical path (rank {critical_rank}, finishes last):")
        for span in chain:
            d = duration(span)
            lines.append(
                f"  {span.name:<24} {d:>12.6f}s  {d / makespan:>6.1%} of makespan"
            )
    return "\n".join(lines)


def print_timeline(recorder: Optional[Recorder], width: int = 64) -> None:
    """Print :func:`render_timeline` (no-op without a recorder)."""
    if recorder is not None:
        print(render_timeline(recorder, width=width))
