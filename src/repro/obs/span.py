"""Spans and the thread-safe :class:`Recorder` they are written to.

A :class:`Span` is one named interval on one rank's timeline, carrying
*both* clocks: wall time (``perf_counter``, what the Python process
actually spent) and virtual time (the simulated cluster clock, what the
modelled hardware would spend).  Spans nest — plan → job → operator phase
→ shuffle — through a per-thread stack, which matches the execution model
exactly: every simulated MPI rank is one thread, so implicit nesting per
thread gives each rank its own well-formed span tree, all hanging off the
driver's root ``plan`` span.

The :class:`Recorder` is the single sink for the whole run: spans, instant
events (fault firings, retries, marks) and metrics (counters, gauges,
histograms) all land here, and the exporters in
:mod:`repro.obs.export` / :mod:`repro.obs.timeline` read only this object.

Nothing in this module is imported by the runtimes' fast path: a runtime
without a recorder never touches ``repro.obs`` (guarded by
``tests/obs/test_zero_overhead.py``).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class Span:
    """One completed named interval on one rank's (or the driver's) timeline."""

    #: recorder-unique id (allocation order, stable for a deterministic run)
    span_id: int
    #: id of the enclosing span, or ``None`` for a root
    parent_id: Optional[int]
    name: str
    #: coarse grouping used as the Chrome-trace category ("plan", "job",
    #: "sort", "shuffle", ...)
    category: str
    #: owning rank; ``None`` marks a driver-side span
    rank: Optional[int]
    #: virtual-time interval in simulated seconds (0/0 without a cluster model)
    start_virtual: float
    end_virtual: float
    #: wall-time interval in seconds since the recorder was created
    start_wall: float
    end_wall: float
    #: free-form annotations (job index, record counts, ...)
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def virtual_duration(self) -> float:
        """Simulated seconds covered by this span."""
        return self.end_virtual - self.start_virtual

    @property
    def wall_duration(self) -> float:
        """Wall-clock seconds covered by this span."""
        return self.end_wall - self.start_wall


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration annotation (fault firing, retry, checkpoint, mark)."""

    name: str
    category: str
    rank: Optional[int]
    ts_virtual: float
    ts_wall: float
    attrs: dict[str, Any] = field(default_factory=dict)


class _SpanHandle:
    """What :meth:`Recorder.span` yields: the open span's identity.

    Passing a handle as ``parent=`` links spans across threads (the runtimes
    hand the driver's root handle to every rank thread).
    """

    __slots__ = ("span_id", "attrs")

    def __init__(self, span_id: int, attrs: dict[str, Any]) -> None:
        self.span_id = span_id
        self.attrs = attrs

    def annotate(self, **kv: Any) -> None:
        """Attach attributes to the span while it is still open."""
        self.attrs.update(kv)


class Recorder:
    """Thread-safe collector of spans, instant events and metrics.

    One recorder observes one execution (possibly spanning several fault
    -tolerance attempts).  All mutating methods may be called concurrently
    from every rank thread; span nesting is tracked per thread.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._next_id = 0
        self._wall_epoch = time.perf_counter()
        #: completed spans, in completion order
        self.spans: list[Span] = []
        #: instant events, in emission order
        self.instants: list[InstantEvent] = []
        #: (name, rank) -> accumulated value; rank ``None`` aggregates globally
        self.counters: dict[tuple[str, Optional[int]], float] = {}
        #: (name, rank) -> last value set
        self.gauges: dict[tuple[str, Optional[int]], float] = {}
        #: name -> observed samples
        self.histograms: dict[str, list[float]] = {}

    # -- span recording ------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _wall_now(self) -> float:
        return time.perf_counter() - self._wall_epoch

    def wall_now(self) -> float:
        """Seconds since this recorder's wall epoch.

        The timestamp basis of every recorded span's wall times — callers
        that measure intervals themselves (the serve daemon's per-request
        spans cross ``await`` boundaries, so a context manager would nest
        wrongly) stamp :meth:`record_span` with values from here.
        """
        return self._wall_now()

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "",
        rank: Optional[int] = None,
        clock: Any = None,
        parent: Any = None,
        attrs: Optional[dict[str, Any]] = None,
    ) -> Iterator[_SpanHandle]:
        """Record an interval: wall via ``perf_counter``, virtual via ``clock``.

        ``parent`` (a handle, a span id, or ``None``) overrides the implicit
        per-thread nesting — used to hang rank-thread spans off the driver's
        root span.  The yielded handle can ``annotate(...)`` the open span.
        """
        stack = self._stack()
        if parent is None:
            parent_id: Optional[int] = stack[-1] if stack else None
        else:
            parent_id = parent.span_id if isinstance(parent, _SpanHandle) else int(parent)
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        handle = _SpanHandle(span_id, dict(attrs or {}))
        start_wall = self._wall_now()
        start_virtual = float(clock.now) if clock is not None else 0.0
        stack.append(span_id)
        try:
            yield handle
        finally:
            stack.pop()
            end_wall = self._wall_now()
            end_virtual = float(clock.now) if clock is not None else 0.0
            done = Span(
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                category=category,
                rank=rank,
                start_virtual=start_virtual,
                end_virtual=end_virtual,
                start_wall=start_wall,
                end_wall=end_wall,
                attrs=handle.attrs,
            )
            with self._lock:
                self.spans.append(done)

    def record_span(
        self,
        name: str,
        category: str,
        rank: Optional[int],
        start_virtual: float,
        end_virtual: float,
        start_wall: float = 0.0,
        end_wall: float = 0.0,
        parent: Any = None,
        attrs: Optional[dict[str, Any]] = None,
    ) -> None:
        """Append an already-measured interval (the adapters' entry point)."""
        parent_id = parent.span_id if isinstance(parent, _SpanHandle) else parent
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self.spans.append(
                Span(
                    span_id=span_id,
                    parent_id=parent_id,
                    name=name,
                    category=category,
                    rank=rank,
                    start_virtual=start_virtual,
                    end_virtual=end_virtual,
                    start_wall=start_wall,
                    end_wall=end_wall,
                    attrs=dict(attrs or {}),
                )
            )

    def instant(
        self,
        name: str,
        category: str = "mark",
        rank: Optional[int] = None,
        clock: Any = None,
        ts_virtual: Optional[float] = None,
        attrs: Optional[dict[str, Any]] = None,
    ) -> None:
        """Record a zero-duration event at the current (or given) virtual time."""
        if ts_virtual is None:
            ts_virtual = float(clock.now) if clock is not None else 0.0
        event = InstantEvent(
            name=name,
            category=category,
            rank=rank,
            ts_virtual=ts_virtual,
            ts_wall=self._wall_now(),
            attrs=dict(attrs or {}),
        )
        with self._lock:
            self.instants.append(event)

    # -- metrics -------------------------------------------------------------

    def count(self, name: str, value: float = 1, rank: Optional[int] = None) -> None:
        """Add ``value`` to counter ``name`` (per rank when ``rank`` is given)."""
        with self._lock:
            key = (name, rank)
            self.counters[key] = self.counters.get(key, 0) + value

    def gauge(self, name: str, value: float, rank: Optional[int] = None) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        with self._lock:
            self.gauges[(name, rank)] = value

    def observe(self, name: str, value: float) -> None:
        """Add one sample to histogram ``name``."""
        with self._lock:
            self.histograms.setdefault(name, []).append(float(value))

    # -- queries -------------------------------------------------------------

    def counter_total(self, name: str) -> float:
        """Sum of counter ``name`` over every rank (and the global slot)."""
        with self._lock:
            return sum(v for (n, _r), v in self.counters.items() if n == name)

    def rank_spans(self, rank: int) -> list[Span]:
        """All completed spans owned by ``rank``, in completion order."""
        with self._lock:
            return [s for s in self.spans if s.rank == rank]

    def makespan_virtual(self) -> float:
        """Latest virtual end time across all spans."""
        with self._lock:
            return max((s.end_virtual for s in self.spans), default=0.0)

    def makespan_wall(self) -> float:
        """Latest wall end time across all spans."""
        with self._lock:
            return max((s.end_wall for s in self.spans), default=0.0)

    def ranks(self) -> list[int]:
        """Sorted rank ids that own at least one span."""
        with self._lock:
            return sorted({s.rank for s in self.spans if s.rank is not None})


def maybe_span(recorder: Optional[Recorder], *args: Any, **kwargs: Any):
    """``recorder.span(...)`` when a recorder is attached, else a no-op context."""
    if recorder is None:
        return nullcontext()
    return recorder.span(*args, **kwargs)
