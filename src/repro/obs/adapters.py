"""Adapters folding the older diagnostic streams into one recorder.

Before this layer existed the repo had three disconnected windows into a
run: the virtual-time :class:`~repro.cluster.trace.Tracer`, the
:class:`~repro.mapreduce.columnar.PerfCounters` snapshots, and the fault
report dict in ``PartitionResult.extra["fault"]``.  Each adapter here maps
one of those onto the :class:`~repro.obs.span.Recorder` vocabulary (spans,
instants, counters), so a single exported artifact tells the whole story.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.span import Recorder


def record_tracer(recorder: Recorder, tracer: Any, parent: Any = None) -> None:
    """Fold a :class:`~repro.cluster.trace.Tracer`'s timelines into spans.

    Compute/send/recv events become virtual-time spans on their rank's
    track; zero-duration ``mark`` events become instants.  Byte counts ride
    along as ``trace.sent_bytes`` / ``trace.recv_bytes`` counters.
    """
    for timeline in tracer.timelines:
        for event in timeline.events:
            if event.kind == "mark":
                recorder.instant(
                    event.label or "mark",
                    category="trace",
                    rank=event.rank,
                    ts_virtual=event.start,
                )
                continue
            recorder.record_span(
                name=event.label or event.kind,
                category=event.kind,
                rank=event.rank,
                start_virtual=event.start,
                end_virtual=event.end,
                parent=parent,
                attrs={"nbytes": event.nbytes} if event.nbytes else None,
            )
            if event.kind == "send" and event.nbytes:
                recorder.count("trace.sent_bytes", event.nbytes, rank=event.rank)
            elif event.kind == "recv" and event.nbytes:
                recorder.count("trace.recv_bytes", event.nbytes, rank=event.rank)


def record_perf(recorder: Recorder, perf_summary: Optional[dict[str, Any]]) -> None:
    """Fold a :meth:`PerfCounters.summary` dict into counters and gauges.

    ``records_moved`` / ``bytes_moved`` become run-level counters;
    each phase's wall and virtual totals become ``perf.phase.*`` gauges.
    Spill counters (present only when a memory-budgeted run actually
    spilled) land under ``spill.*``, with the merge fan-in as a gauge.
    """
    if not perf_summary:
        return
    recorder.count("shuffle.records_moved", perf_summary.get("records_moved", 0))
    recorder.count("shuffle.bytes_moved", perf_summary.get("bytes_moved", 0))
    for name, times in perf_summary.get("phases", {}).items():
        recorder.gauge(f"perf.phase.{name}.wall_s", times["wall_s"])
        recorder.gauge(f"perf.phase.{name}.virtual_s", times["virtual_s"])
    spill = perf_summary.get("spill")
    if spill:
        for key in ("runs_written", "spilled_records", "spilled_bytes"):
            recorder.count(f"spill.{key}", spill.get(key, 0))
        recorder.gauge("spill.max_merge_fanin", spill.get("max_merge_fanin", 0))


def record_fault_report(recorder: Recorder, report: Optional[dict[str, Any]]) -> None:
    """Fold a ``PartitionResult.extra['fault']`` report into the stream.

    Attempts and virtual backoff become counters and every injected-fault
    firing becomes a driver-track instant, with the injector's per-kind
    counts under ``fault.injected.*``.  Failed attempts and worker crashes
    are *not* replayed here — the recovery loop records those live as
    ``retry``/``crash``/``restart`` instants and the ``fault.restarts``
    counter.
    """
    if not report:
        return
    recorder.count("fault.attempts", report.get("attempts", 1))
    recorder.count("fault.backoff_virtual_s", report.get("backoff_virtual_s", 0.0))
    if "backoff_wall_s" in report:
        recorder.count("fault.backoff_wall_s", report["backoff_wall_s"])
    recorder.count("fault.recovered_jobs", len(report.get("recovered_jobs", [])))
    injected = report.get("injected")
    if injected:
        for kind, n in injected.get("counts", {}).items():
            recorder.count(f"fault.injected.{kind}", n)
        for line in injected.get("fired", []):
            recorder.instant(line, category="fault.injected")


def record_serve_request(
    recorder: Recorder,
    verb: str,
    latency_ms: Optional[float] = None,
    rejected: bool = False,
    records: int = 0,
) -> None:
    """Count one daemon request in the ``serve.*`` vocabulary.

    Every request increments ``serve.requests.<verb>``; admission-control
    rejections additionally count under ``serve.rejected``; ``append``
    requests feed the ``serve.append_latency_ms`` histogram and the
    ``serve.appended_records`` counter (the ``papar.serve`` document's
    inputs — see :func:`repro.obs.export.serve_metrics_json`).
    """
    recorder.count(f"serve.requests.{verb}")
    if rejected:
        recorder.count("serve.rejected")
        return
    if records:
        recorder.count("serve.appended_records", records)
    if latency_ms is not None:
        recorder.observe("serve.append_latency_ms", latency_ms)


def record_rebalance(
    recorder: Recorder,
    generation: int,
    reason: str,
    wall_s: float,
    records: int,
) -> None:
    """Record one online repartition: counter, histogram, and an instant.

    The instant makes every swap visible on the exported timeline with its
    trigger (``skew`` or ``drift``), the generation it published, and how
    many records the rebuild covered.
    """
    recorder.count("serve.rebalances")
    recorder.observe("serve.rebalance_wall_s", wall_s)
    recorder.instant(
        f"rebalance -> gen{generation} ({reason}, {records} records)",
        category="serve",
        attrs={"generation": generation, "reason": reason, "records": records},
    )


def record_optimizer(recorder: Recorder, summary: Optional[dict[str, Any]]) -> None:
    """Fold a ``PartitionResult.extra['optimizer']`` section into counters.

    Passes fired, operators/exchanges removed, and the estimated bytes the
    rewrites saved land under ``optimizer.*``; each applied rewrite also
    becomes a driver-track instant so the rewritten plan is visible on the
    run timeline.
    """
    if not summary:
        return
    recorder.count("optimizer.passes_fired", len(summary.get("passes_fired", [])))
    recorder.count("optimizer.operators_removed", summary.get("operators_removed", 0))
    recorder.count("optimizer.exchanges_removed", summary.get("exchanges_removed", 0))
    saved = summary.get("est_bytes_saved")
    if saved:
        recorder.count("optimizer.est_bytes_saved", saved)
    for rewrite in summary.get("rewrites", []):
        recorder.instant(
            f"{rewrite['code']} {rewrite['pass']} at {rewrite['site']}",
            category="optimizer",
        )
    if summary.get("pruning"):
        pruned = ", ".join(summary["pruning"].get("pruned", []))
        recorder.instant(f"PAP083 column-pruning: {pruned}", category="optimizer")
