"""Virtual-time cluster cost model.

The paper's evaluation ran on a 16-node cluster (two 8-core Sandy Bridge
sockets per node, 10 GbE and QDR InfiniBand).  We cannot reproduce wall-clock
scaling of that machine inside one Python process, so every cluster-scale
figure in this repo is produced under a *virtual-time* model:

* each MPI rank owns a :class:`~repro.cluster.clock.VirtualClock`;
* communication advances clocks according to a
  :class:`~repro.cluster.network.NetworkModel` (latency + size / bandwidth,
  with separate intra-node parameters);
* compute phases are charged through a :class:`~repro.cluster.model.CostModel`
  whose per-record constants are calibrated against numpy kernels on the host.

See DESIGN.md §6 for the methodology discussion.
"""

from repro.cluster.clock import VirtualClock
from repro.cluster.network import (
    ETHERNET_10G,
    INFINIBAND_QDR,
    LOCALHOST,
    NetworkModel,
)
from repro.cluster.machine import NodeSpec
from repro.cluster.model import ClusterModel, CostModel

__all__ = [
    "VirtualClock",
    "NetworkModel",
    "NodeSpec",
    "ClusterModel",
    "CostModel",
    "ETHERNET_10G",
    "INFINIBAND_QDR",
    "LOCALHOST",
]
