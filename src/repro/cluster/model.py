"""Cluster and compute cost models.

:class:`ClusterModel` binds together the node spec, the rank-to-node mapping
and the network model, and is what the simulated MPI runtime consults when
charging virtual time for messages.

:class:`CostModel` holds per-record / per-byte compute constants used to
charge virtual time for local work (sorting, hashing, packing...).  The
defaults approximate vectorized numpy kernels on a ~2.6 GHz core; call
:func:`calibrate` to re-measure them on the current host.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.machine import NodeSpec
from repro.cluster.network import LOCALHOST, NetworkModel
from repro.errors import ClusterError


@dataclass(frozen=True)
class CostModel:
    """Per-record compute cost constants, in seconds.

    All constants are for a single core; multi-threaded phases are charged
    through :meth:`parallel`, which applies a fixed parallel efficiency.
    """

    #: comparison-sort constant: ``sort_cost(n) = sort_per_cmp * n * log2(n)``
    sort_per_cmp: float = 3e-9
    #: per-record cost for a streaming pass (copy, compare, select)
    stream_per_rec: float = 2e-9
    #: per-record cost for hashing / grouping
    hash_per_rec: float = 12e-9
    #: per-byte cost for (de)serialization and packing (memcpy-class: the
    #: modeled system is C++ MR-MPI moving raw buffers)
    pack_per_byte: float = 0.1e-9
    #: fixed per-job scheduling overhead (mapper/reducer launch)
    job_overhead: float = 250e-6
    #: parallel efficiency of multi-threaded phases (0 < e <= 1)
    parallel_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if not (0.0 < self.parallel_efficiency <= 1.0):
            raise ClusterError("parallel_efficiency must be in (0, 1]")
        for field in ("sort_per_cmp", "stream_per_rec", "hash_per_rec", "pack_per_byte", "job_overhead"):
            if getattr(self, field) < 0:
                raise ClusterError(f"{field} must be non-negative")

    # -- single-core costs -------------------------------------------------

    def sort(self, n: int) -> float:
        """Cost of comparison-sorting ``n`` records on one core."""
        if n <= 1:
            return 0.0
        return self.sort_per_cmp * n * math.log2(n)

    def stream(self, n: int) -> float:
        """Cost of one linear pass over ``n`` records."""
        return self.stream_per_rec * max(n, 0)

    def hash_group(self, n: int) -> float:
        """Cost of hashing ``n`` records into groups."""
        return self.hash_per_rec * max(n, 0)

    def pack(self, nbytes: int) -> float:
        """Cost of serializing / packing ``nbytes``."""
        return self.pack_per_byte * max(nbytes, 0)

    # -- parallel scaling --------------------------------------------------

    def parallel(self, single_core_cost: float, threads: int) -> float:
        """Cost of a phase that uses ``threads`` cores with fixed efficiency."""
        if threads < 1:
            raise ClusterError(f"threads must be >= 1, got {threads!r}")
        if threads == 1:
            return single_core_cost
        return single_core_cost / (threads * self.parallel_efficiency)


def calibrate(sample_size: int = 1 << 20, repeats: int = 3) -> CostModel:
    """Measure compute constants on the current host using numpy kernels.

    Used once to sanity-check the defaults; experiments use the fixed
    defaults so results stay deterministic across hosts.
    """
    rng = np.random.default_rng(42)
    data = rng.integers(0, 1 << 30, size=sample_size, dtype=np.int64)

    def best(fn) -> float:
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_sort = best(lambda: np.sort(data, kind="mergesort"))
    t_stream = best(lambda: (data + 1).sum())
    t_pack = best(lambda: data.tobytes())

    return CostModel(
        sort_per_cmp=t_sort / (sample_size * math.log2(sample_size)),
        stream_per_rec=t_stream / sample_size,
        pack_per_byte=t_pack / data.nbytes,
    )


@dataclass(frozen=True)
class ClusterModel:
    """A homogeneous cluster: ``num_nodes`` nodes, ``ranks_per_node`` ranks each.

    The paper's testbed is ``ClusterModel(num_nodes=16, ranks_per_node=2,
    network=INFINIBAND_QDR)`` — one MPI rank per socket, eight OpenMP threads
    per rank (``threads_per_rank=8``).
    """

    num_nodes: int = 16
    ranks_per_node: int = 2
    threads_per_rank: int = 8
    network: NetworkModel = LOCALHOST
    node: NodeSpec = NodeSpec()
    cost: CostModel = CostModel()

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ClusterError(f"num_nodes must be >= 1, got {self.num_nodes!r}")
        if self.ranks_per_node < 1:
            raise ClusterError(f"ranks_per_node must be >= 1, got {self.ranks_per_node!r}")
        if self.threads_per_rank < 1:
            raise ClusterError(f"threads_per_rank must be >= 1, got {self.threads_per_rank!r}")
        if self.ranks_per_node * self.threads_per_rank > self.node.cores:
            raise ClusterError(
                f"{self.ranks_per_node} ranks x {self.threads_per_rank} threads "
                f"oversubscribe a {self.node.cores}-core node"
            )

    @property
    def size(self) -> int:
        """Total number of MPI ranks."""
        return self.num_nodes * self.ranks_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank`` (ranks are packed node by node)."""
        if not (0 <= rank < self.size):
            raise ClusterError(f"rank {rank} out of range for {self.size} ranks")
        return rank // self.ranks_per_node

    def same_node(self, a: int, b: int) -> bool:
        """True when ranks ``a`` and ``b`` live on the same node."""
        return self.node_of(a) == self.node_of(b)

    def transfer_time(self, nbytes: int, src: int, dst: int) -> float:
        """Virtual seconds to move ``nbytes`` from rank ``src`` to ``dst``."""
        if src == dst:
            return 0.0
        return self.network.transfer_time(nbytes, same_node=self.same_node(src, dst))

    def compute(self, single_core_cost: float) -> float:
        """Charge a compute phase that each rank runs on its own threads."""
        return self.cost.parallel(single_core_cost, self.threads_per_rank)

    def with_nodes(self, num_nodes: int) -> "ClusterModel":
        """A copy of this cluster scaled to ``num_nodes`` nodes."""
        return replace(self, num_nodes=num_nodes)
