"""Compute-node specification.

Matches the paper's testbed node: two 8-core Intel Xeon E5-2670
(Sandy Bridge) sockets at 2.6 GHz, 64 GB memory.  The muBLASTP experiments
bind one MPI rank per socket, so the default is two ranks per node with
eight worker threads each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClusterError


@dataclass(frozen=True)
class NodeSpec:
    """One compute node of the simulated cluster."""

    name: str = "E5-2670"
    sockets: int = 2
    cores_per_socket: int = 8
    clock_ghz: float = 2.6
    memory_gb: float = 64.0
    #: relative single-core throughput factor (1.0 = calibration host core)
    core_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ClusterError("node must have at least one socket and one core")
        if self.core_speed <= 0:
            raise ClusterError("core_speed must be positive")

    @property
    def cores(self) -> int:
        """Total number of physical cores on this node."""
        return self.sockets * self.cores_per_socket
