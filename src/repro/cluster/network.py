"""Network models: latency/bandwidth parameters for message transfer time.

Two concrete models mirror the paper's testbed interconnects:

* :data:`ETHERNET_10G` — 10 Gbps Ethernet with socket-stack latencies.
  PowerLyra's own shuffle runs over sockets on Ethernet (Section IV-C).
* :data:`INFINIBAND_QDR` — QDR InfiniBand with RDMA latencies, as used by
  MVAPICH2 for the PaPar/MR-MPI runs.

The transfer-time model is the classic alpha-beta model::

    t(n) = latency + n / bandwidth

with separate (much cheaper) parameters for messages that stay inside a node
(shared-memory transport).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClusterError


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta transfer-time model for one interconnect.

    Parameters
    ----------
    name:
        Human-readable identifier used in reports.
    latency_s:
        One-way small-message latency between two nodes, in seconds.
    bandwidth_bps:
        Sustained point-to-point bandwidth between two nodes, bytes/second.
    intra_latency_s / intra_bandwidth_bps:
        Same quantities for two ranks on the same node (shared memory).
    """

    name: str
    latency_s: float
    bandwidth_bps: float
    intra_latency_s: float
    intra_bandwidth_bps: float

    def __post_init__(self) -> None:
        for field in ("latency_s", "bandwidth_bps", "intra_latency_s", "intra_bandwidth_bps"):
            if getattr(self, field) < 0:
                raise ClusterError(f"{self.name}: {field} must be non-negative")
        if self.bandwidth_bps == 0 or self.intra_bandwidth_bps == 0:
            raise ClusterError(f"{self.name}: bandwidth must be positive")

    def transfer_time(self, nbytes: int, *, same_node: bool) -> float:
        """Time in seconds to move ``nbytes`` between two ranks."""
        if nbytes < 0:
            raise ClusterError(f"negative message size {nbytes!r}")
        if same_node:
            return self.intra_latency_s + nbytes / self.intra_bandwidth_bps
        return self.latency_s + nbytes / self.bandwidth_bps


#: 10 Gbps Ethernet through the kernel socket stack (PowerLyra's transport).
ETHERNET_10G = NetworkModel(
    name="10GbE (sockets)",
    latency_s=50e-6,
    bandwidth_bps=10e9 / 8 * 0.85,  # ~1.06 GB/s sustained
    intra_latency_s=5e-6,
    intra_bandwidth_bps=6e9,
)

#: QDR InfiniBand with RDMA (MVAPICH2's transport for PaPar / MR-MPI).
INFINIBAND_QDR = NetworkModel(
    name="QDR InfiniBand (RDMA)",
    latency_s=1.5e-6,
    bandwidth_bps=32e9 / 8 * 0.9,  # QDR 4x effective data rate ~3.6 GB/s
    intra_latency_s=0.8e-6,
    intra_bandwidth_bps=8e9,
)

#: Zero-cost network for pure-functional runs (tests that ignore timing).
LOCALHOST = NetworkModel(
    name="localhost (free)",
    latency_s=0.0,
    bandwidth_bps=float("inf"),
    intra_latency_s=0.0,
    intra_bandwidth_bps=float("inf"),
)
