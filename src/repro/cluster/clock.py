"""Per-rank virtual clocks.

A :class:`VirtualClock` models the local time of one MPI rank in simulated
seconds.  Clocks only move forward; message passing merges clocks in the
usual Lamport fashion (``receive`` sets the receiver clock to the maximum of
its own time and the message arrival time).
"""

from __future__ import annotations

from repro.errors import ClusterError


class VirtualClock:
    """A monotonically increasing virtual clock for one rank."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClusterError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative).

        Returns the new time.
        """
        if seconds < 0:
            raise ClusterError(f"cannot advance clock by negative time {seconds!r}")
        self._now += seconds
        return self._now

    def merge(self, timestamp: float) -> float:
        """Set the clock to ``max(now, timestamp)`` and return the new time."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset to ``start`` (used between repeated experiments)."""
        if start < 0:
            raise ClusterError(f"clock cannot reset to negative time {start!r}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.6f})"
