"""Virtual-time execution traces.

A :class:`Tracer` collects per-rank events (compute phases, sends, receives)
stamped with virtual time, so a simulated run can be inspected as a timeline
— which phase dominated, how long ranks idled at synchronization points,
how shuffle volume was distributed.  The MPI runtime does not require a
tracer; one is attached explicitly where analysis is wanted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One event on one rank's timeline."""

    rank: int
    kind: str  # "compute" | "send" | "recv" | "mark"
    start: float
    end: float
    label: str = ""
    nbytes: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RankTimeline:
    """All events of one rank, in emission order."""

    rank: int
    events: list[TraceEvent] = field(default_factory=list)

    def busy_time(self) -> float:
        """Total virtual time covered by compute events."""
        return sum(e.duration for e in self.events if e.kind == "compute")

    def bytes_sent(self) -> int:
        return sum(e.nbytes for e in self.events if e.kind == "send")

    def bytes_received(self) -> int:
        return sum(e.nbytes for e in self.events if e.kind == "recv")


class Tracer:
    """Thread-safe collector of trace events across ranks."""

    def __init__(self, size: int) -> None:
        self._lock = threading.Lock()
        self.timelines = [RankTimeline(rank=r) for r in range(size)]

    def record(
        self,
        rank: int,
        kind: str,
        start: float,
        end: float,
        label: str = "",
        nbytes: int = 0,
    ) -> None:
        event = TraceEvent(rank=rank, kind=kind, start=start, end=end, label=label, nbytes=nbytes)
        with self._lock:
            self.timelines[rank].events.append(event)

    def mark(self, rank: int, now: float, label: str) -> None:
        """A zero-duration annotation (e.g. 'job sort starts')."""
        self.record(rank, "mark", now, now, label=label)

    # -- analysis -------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.timelines)

    def makespan(self) -> float:
        """Latest event end across all ranks."""
        ends = [e.end for tl in self.timelines for e in tl.events]
        return max(ends) if ends else 0.0

    def compute_fraction(self) -> float:
        """Fraction of total rank-time spent computing (vs idle/comm)."""
        span = self.makespan()
        if span == 0.0:
            return 0.0
        busy = sum(tl.busy_time() for tl in self.timelines)
        return busy / (span * self.size)

    def summary(self) -> str:
        """Per-rank one-line summary table."""
        lines = [f"{'rank':>4}  {'events':>6}  {'busy_s':>10}  {'sent_B':>10}  {'recv_B':>10}"]
        for tl in self.timelines:
            lines.append(
                f"{tl.rank:>4}  {len(tl.events):>6}  {tl.busy_time():>10.6f}  "
                f"{tl.bytes_sent():>10}  {tl.bytes_received():>10}"
            )
        lines.append(f"makespan: {self.makespan():.6f}s, compute fraction: {self.compute_fraction():.1%}")
        return "\n".join(lines)


def traced_program(tracer: Tracer, label_prefix: str = ""):
    """Decorator helpers for rank programs: wraps ``comm.charge_compute`` and
    the pickled send/recv paths of a communicator with trace recording."""

    def instrument(comm):
        original_charge = comm.charge_compute
        original_send = comm.send
        original_recv = comm.recv

        def charge(seconds: float) -> None:
            start = comm.clock.now
            original_charge(seconds)
            tracer.record(comm.rank, "compute", start, comm.clock.now, label=label_prefix)

        def send(obj, dest, tag=0):
            import pickle

            start = comm.clock.now
            nbytes = len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
            original_send(obj, dest, tag=tag)
            tracer.record(
                comm.rank, "send", start, comm.clock.now, label=f"->{dest}", nbytes=nbytes
            )

        def recv(source=-1, tag=-1, status=None):
            from repro.mpi.status import Status

            start = comm.clock.now
            st = status if status is not None else Status()
            out = original_recv(source=source, tag=tag, status=st)
            tracer.record(
                comm.rank,
                "recv",
                start,
                comm.clock.now,
                label=f"<-{st.source}",
                nbytes=st.count,
            )
            return out

        comm.charge_compute = charge
        comm.send = send
        comm.recv = recv
        return comm

    return instrument
