"""Out-of-core execution: memory budgets, run files, external sort, spill.

This package is the budgeted twin of the in-memory engine.  A
:class:`~repro.ooc.budget.MemoryBudget` bounds the working set;
:class:`~repro.ooc.chunked.ChunkedDataset` streams inputs in
budget-sized chunks; :mod:`~repro.ooc.extsort` sorts datasets larger
than memory through crc32-framed run files
(:mod:`~repro.ooc.runfile`); and :mod:`~repro.ooc.spill` /
:mod:`~repro.ooc.exchange` re-route the distributed shuffles through
per-destination run files when the budget demands it.

Nothing in the rest of the framework imports this package unless a
``memory_budget`` is actually set — the unbudgeted fast path never pays
for (or even loads) the machinery (tested with a fresh interpreter).
"""

from repro.ooc.budget import MemoryBudget, MemoryBudgetError, parse_memory_budget
from repro.ooc.chunked import ChunkedDataset, iter_dataset_chunks
from repro.ooc.extsort import ExternalSorter, external_sort_chunks
from repro.ooc.runfile import (
    Frame,
    RunCorruptionError,
    RunFileError,
    RunReader,
    RunWriter,
    SpillManifest,
    SpillStats,
    read_run,
)
from repro.ooc.spill import OOCContext, SpillableShuffle

__all__ = [
    "ChunkedDataset",
    "ExternalSorter",
    "Frame",
    "MemoryBudget",
    "MemoryBudgetError",
    "OOCContext",
    "RunCorruptionError",
    "RunFileError",
    "RunReader",
    "RunWriter",
    "SpillManifest",
    "SpillStats",
    "SpillableShuffle",
    "external_sort_chunks",
    "iter_dataset_chunks",
    "parse_memory_budget",
    "read_run",
]
