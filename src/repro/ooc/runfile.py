"""Spill run files: the columnar on-disk layout with crc32 framing.

A *run file* is the unit both the external sort and the spillable shuffle
stage on disk.  The layout keeps data columnar — each frame stores the
keys array and the values array back-to-back as raw little-endian numpy
bytes — so a frame reads straight back into the arrays it came from with
zero parsing, exactly like the in-memory :class:`KVBatch` split into
bounded pieces.

Layout::

    header line     one JSON object + '\\n'
                    {"magic": "papar-run", "version": 1,
                     "key_dtype": <descr|null>, "value_dtype": <descr>}
    frame*          <u4 crc32> <u4 num_records> <u8 tag>
                    <u4 key_nbytes> <u8 value_nbytes>
                    key bytes .. value bytes

The crc32 covers the concatenated key+value payload, so a torn or
corrupted spill is detected at re-read time (:class:`RunCorruptionError`)
rather than silently partitioning garbage — the same checksum discipline
the fault-injection transport uses.  ``tag`` is a free u8 the shuffle uses
to carry the destination partition id of a distribute frame.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

import numpy as np

from repro.errors import PaParError

PathLike = Union[str, os.PathLike]

_MAGIC = "papar-run"
_VERSION = 1
#: frame header: crc32, num_records, tag, key_nbytes, value_nbytes
_FRAME = struct.Struct("<IIQIQ")


class RunFileError(PaParError):
    """A malformed run file (bad magic, version, or truncated frame)."""


class RunCorruptionError(RunFileError):
    """A frame whose payload does not match its crc32."""


def _dtype_descr(dtype: Optional[np.dtype]):
    if dtype is None:
        return None
    return np.lib.format.dtype_to_descr(np.dtype(dtype))


def _descr_dtype(descr) -> Optional[np.dtype]:
    if descr is None:
        return None
    return np.lib.format.descr_to_dtype(
        [tuple(f) for f in descr] if isinstance(descr, list) else descr
    )


@dataclass(frozen=True)
class SpillManifest:
    """What a finished run file is described by (the alltoall payload).

    Shipping the manifest instead of the data is the point of spilling:
    the receiving rank streams the frames back from disk instead of ever
    holding the whole run in memory.
    """

    path: str
    num_records: int
    nbytes: int
    frames: int
    #: producing rank (source ordering on the merge side)
    source: int = 0

    def as_dict(self) -> dict:
        """JSON/pickle-friendly form (recorded in checkpoints)."""
        return {
            "path": self.path,
            "num_records": self.num_records,
            "nbytes": self.nbytes,
            "frames": self.frames,
            "source": self.source,
        }


@dataclass
class Frame:
    """One decoded frame: aligned key/value arrays plus the routing tag."""

    values: np.ndarray
    keys: Optional[np.ndarray] = None
    tag: int = 0

    def __len__(self) -> int:
        return len(self.values)

    @property
    def nbytes(self) -> int:
        """Payload bytes of this frame (keys + values)."""
        return self.values.nbytes + (self.keys.nbytes if self.keys is not None else 0)


class RunWriter:
    """Append frames of (keys, values) arrays to one run file."""

    def __init__(
        self,
        path: PathLike,
        value_dtype: np.dtype,
        key_dtype: Optional[np.dtype] = None,
        source: int = 0,
    ) -> None:
        self.path = os.fspath(path)
        self.value_dtype = np.dtype(value_dtype)
        self.key_dtype = np.dtype(key_dtype) if key_dtype is not None else None
        self.source = source
        self.num_records = 0
        self.nbytes = 0
        self.frames = 0
        self._fh = open(self.path, "wb")
        header = {
            "magic": _MAGIC,
            "version": _VERSION,
            "key_dtype": _dtype_descr(self.key_dtype),
            "value_dtype": _dtype_descr(self.value_dtype),
        }
        self._fh.write(json.dumps(header).encode("utf-8") + b"\n")

    def append(
        self,
        values: np.ndarray,
        keys: Optional[np.ndarray] = None,
        tag: int = 0,
    ) -> None:
        """Write one crc32-framed block of aligned key/value arrays."""
        values = np.ascontiguousarray(values, dtype=self.value_dtype)
        key_bytes = b""
        if self.key_dtype is not None:
            if keys is None:
                raise RunFileError(f"run {self.path}: writer expects a keys array")
            keys = np.ascontiguousarray(keys, dtype=self.key_dtype)
            if len(keys) != len(values):
                raise RunFileError(
                    f"run {self.path}: {len(keys)} keys vs {len(values)} values"
                )
            key_bytes = keys.tobytes()
        value_bytes = values.tobytes()
        crc = zlib.crc32(key_bytes)
        crc = zlib.crc32(value_bytes, crc)
        self._fh.write(
            _FRAME.pack(crc, len(values), tag, len(key_bytes), len(value_bytes))
        )
        self._fh.write(key_bytes)
        self._fh.write(value_bytes)
        self.num_records += len(values)
        self.nbytes += len(key_bytes) + len(value_bytes)
        self.frames += 1

    def close(self) -> SpillManifest:
        """Flush, close, and describe the finished run."""
        self._fh.close()
        return SpillManifest(
            path=self.path,
            num_records=self.num_records,
            nbytes=self.nbytes,
            frames=self.frames,
            source=self.source,
        )

    def __enter__(self) -> "RunWriter":
        return self

    def __exit__(self, *exc) -> None:
        self._fh.close()


class RunReader:
    """Stream the frames of one run file back, verifying each crc32."""

    def __init__(self, path: PathLike) -> None:
        self.path = os.fspath(path)
        self._fh = open(self.path, "rb")
        try:
            header = json.loads(self._fh.readline().decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._fh.close()
            raise RunFileError(f"run {self.path}: unreadable header: {exc}") from exc
        if header.get("magic") != _MAGIC or header.get("version") != _VERSION:
            self._fh.close()
            raise RunFileError(
                f"run {self.path}: bad magic/version {header.get('magic')!r}/"
                f"{header.get('version')!r}"
            )
        self.key_dtype = _descr_dtype(header["key_dtype"])
        self.value_dtype = _descr_dtype(header["value_dtype"])

    def __iter__(self) -> Iterator[Frame]:
        return self.frames()

    def frames(self) -> Iterator[Frame]:
        """Yield each frame in append order (bounded memory: one at a time)."""
        try:
            while True:
                head = self._fh.read(_FRAME.size)
                if not head:
                    return
                if len(head) < _FRAME.size:
                    raise RunFileError(f"run {self.path}: truncated frame header")
                crc, nrec, tag, key_nbytes, value_nbytes = _FRAME.unpack(head)
                key_bytes = self._fh.read(key_nbytes)
                value_bytes = self._fh.read(value_nbytes)
                if len(key_bytes) < key_nbytes or len(value_bytes) < value_nbytes:
                    raise RunFileError(f"run {self.path}: truncated frame payload")
                actual = zlib.crc32(key_bytes)
                actual = zlib.crc32(value_bytes, actual)
                if actual != crc:
                    raise RunCorruptionError(
                        f"run {self.path}: frame crc mismatch "
                        f"(stored {crc:#010x}, computed {actual:#010x})"
                    )
                values = np.frombuffer(value_bytes, dtype=self.value_dtype).copy()
                keys = None
                if self.key_dtype is not None and key_nbytes:
                    keys = np.frombuffer(key_bytes, dtype=self.key_dtype).copy()
                if len(values) != nrec:
                    raise RunFileError(
                        f"run {self.path}: frame declares {nrec} records, "
                        f"payload holds {len(values)}"
                    )
                yield Frame(values=values, keys=keys, tag=tag)
        finally:
            self._fh.close()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        self._fh.close()


def read_run(path: PathLike) -> list[Frame]:
    """All frames of a run file (test/debug convenience; unbounded memory)."""
    return list(RunReader(path).frames())


@dataclass
class SpillStats:
    """Counters one out-of-core context accumulates across its spills."""

    runs_written: int = 0
    spilled_records: int = 0
    spilled_bytes: int = 0
    max_merge_fanin: int = 0
    #: manifests of every run this context wrote (checkpoint payload)
    manifests: list = field(default_factory=list)

    def record_run(self, manifest: SpillManifest) -> None:
        """Fold one finished run into the counters."""
        self.runs_written += 1
        self.spilled_records += manifest.num_records
        self.spilled_bytes += manifest.nbytes
        self.manifests.append(manifest)

    def record_merge(self, fanin: int) -> None:
        """Track the widest k-way merge performed."""
        if fanin > self.max_merge_fanin:
            self.max_merge_fanin = fanin

    def as_dict(self) -> dict:
        """The summary dict folded into ``PerfCounters`` / checkpoints."""
        return {
            "runs_written": self.runs_written,
            "spilled_records": self.spilled_records,
            "spilled_bytes": self.spilled_bytes,
            "max_merge_fanin": self.max_merge_fanin,
        }
