"""Memory-bounded chunked views over the on-disk input formats.

A :class:`ChunkedDataset` stands in for a fully-materialized
:class:`~repro.core.dataset.Dataset` at the head of a workflow: it knows
its schema, record count and byte size up front (so planning, block
decomposition and checkpoint fingerprints work unchanged) but reads
records in budget-sized chunks on demand instead of loading the file.

Random access works for both input formats:

* binary files are pure offset arithmetic over fixed-width records;
* delimited text files get a sparse *line-offset index* — the byte offset
  of every ``stride``-th record, built in one streaming pass with the
  carry-over buffered reader — so a row range seeks to the nearest
  indexed record and parses forward.  The index is one entry per chunk,
  not per record, keeping its footprint negligible.
"""

from __future__ import annotations

import os
from typing import Iterator, Optional, Union

import numpy as np

from repro.core.dataset import Dataset
from repro.errors import FormatError
from repro.formats.records import RecordSchema
from repro.formats.text import iter_text_lines, parse_line
from repro.ooc.budget import MemoryBudget

PathLike = Union[str, os.PathLike]

#: buffer size of the streaming text scans (independent of the budget —
#: a raw read buffer, not a record working set)
_TEXT_BUFFER = 1 << 16


def _scan_text_offsets(path: PathLike, stride: int) -> tuple[np.ndarray, int]:
    """One streaming pass: record count + byte offset of every stride-th record.

    Blank lines are skipped exactly as :func:`repro.formats.text.read_text`
    skips them, so record indexes agree with the materialized dataset.
    """
    offsets: list[int] = []
    num_records = 0
    file_pos = 0  # byte offset of the first unconsumed byte
    buf = b""
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_TEXT_BUFFER)
            if not chunk:
                break
            buf += chunk
            start = 0
            while True:
                nl = buf.find(b"\n", start)
                if nl < 0:
                    break
                if buf[start:nl].strip():
                    if num_records % stride == 0:
                        offsets.append(file_pos + start)
                    num_records += 1
                start = nl + 1
            file_pos += start
            buf = buf[start:]
    if buf.strip():
        if num_records % stride == 0:
            offsets.append(file_pos)
        num_records += 1
    return np.asarray(offsets, dtype=np.int64), num_records


class ChunkedDataset:
    """A row-range view over an on-disk record file, read chunk at a time.

    Views are cheap: :meth:`slice_view` shares the file handle-free state
    (path, schema, text index) and narrows ``start``/``num_records``, which
    is how the block decomposition hands each simulated rank its slice
    without any rank ever materializing the whole input.
    """

    def __init__(
        self,
        path: PathLike,
        schema: RecordSchema,
        budget: MemoryBudget,
        *,
        start: int = 0,
        num_records: Optional[int] = None,
        _text_index: Optional[np.ndarray] = None,
        _text_stride: int = 0,
        _total_records: Optional[int] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.schema = schema
        self.budget = budget
        self.chunk_records = budget.chunk_records(schema.itemsize)
        self.start = start
        if schema.input_format == "binary":
            if _total_records is None:
                body = os.path.getsize(self.path) - schema.start_position
                if body < 0 or body % schema.itemsize != 0:
                    raise FormatError(
                        f"{self.path}: not a valid {schema.id!r} file "
                        f"(body {body} B, record {schema.itemsize} B)"
                    )
                _total_records = body // schema.itemsize
            self._text_index = None
            self._text_stride = 0
        elif schema.input_format == "text":
            if _text_index is None:
                _text_stride = max(1, self.chunk_records)
                _text_index, _total_records = _scan_text_offsets(
                    self.path, _text_stride
                )
            self._text_index = _text_index
            self._text_stride = _text_stride
        else:
            raise FormatError(
                f"schema {schema.id!r} has unsupported input format "
                f"{schema.input_format!r} for chunked reading"
            )
        self._total_records = _total_records
        self.num_records = (
            _total_records - start if num_records is None else num_records
        )
        if self.start < 0 or self.start + self.num_records > _total_records:
            raise FormatError(
                f"row range [{start}, {start + self.num_records}) outside "
                f"file of {_total_records} records"
            )

    # -- Dataset-compatible introspection -----------------------------------

    def __len__(self) -> int:
        return self.num_records

    @property
    def nbytes(self) -> int:
        """In-memory structured size of this view (matches ``Dataset.nbytes``)."""
        return self.num_records * self.schema.itemsize

    @property
    def is_packed(self) -> bool:
        """Chunked views are always flat record streams."""
        return False

    # -- range access --------------------------------------------------------

    def slice_view(self, start: int, length: int) -> "ChunkedDataset":
        """A narrower view of rows ``[start, start+length)`` of this view."""
        if start < 0 or length < 0 or start + length > self.num_records:
            raise FormatError(
                f"slice [{start}, {start + length}) outside view of "
                f"{self.num_records} records"
            )
        return ChunkedDataset(
            self.path,
            self.schema,
            self.budget,
            start=self.start + start,
            num_records=length,
            _text_index=self._text_index,
            _text_stride=self._text_stride,
            _total_records=self._total_records,
        )

    def read_rows(self, start: int, length: int) -> np.ndarray:
        """Rows ``[start, start+length)`` of this view as a structured array."""
        if length <= 0:
            return np.empty(0, dtype=self.schema.dtype)
        if start < 0 or start + length > self.num_records:
            raise FormatError(
                f"rows [{start}, {start + length}) outside view of "
                f"{self.num_records} records"
            )
        abs_start = self.start + start
        if self.schema.input_format == "binary":
            with open(self.path, "rb") as fh:
                fh.seek(self.schema.start_position + abs_start * self.schema.itemsize)
                raw = fh.read(length * self.schema.itemsize)
            return np.frombuffer(raw, dtype=self.schema.dtype).copy()
        return self._read_text_rows(abs_start, length)

    def _read_text_rows(self, abs_start: int, length: int) -> np.ndarray:
        block, skip = divmod(abs_start, self._text_stride)
        offset = int(self._text_index[block]) if len(self._text_index) else 0
        rows: list[tuple] = []
        for line in iter_text_lines(self.path, _TEXT_BUFFER, offset=offset):
            if not line.strip():
                continue
            if skip:
                skip -= 1
                continue
            rows.append(parse_line(line, self.schema))
            if len(rows) == length:
                break
        if len(rows) != length:
            raise FormatError(
                f"{self.path}: expected {length} records from row {abs_start}, "
                f"found {len(rows)}"
            )
        return self.schema.to_structured(rows)

    def chunks(self) -> Iterator[Dataset]:
        """Budget-sized flat datasets covering this view in row order."""
        pos = 0
        while pos < self.num_records:
            length = min(self.chunk_records, self.num_records - pos)
            yield Dataset(
                schema=self.schema, records=self.read_rows(pos, length)
            )
            pos += length

    def materialize(self) -> Dataset:
        """The whole view as one in-memory dataset (fallback paths only)."""
        return Dataset(
            schema=self.schema, records=self.read_rows(0, self.num_records)
        )

    def column(self, name: str) -> np.ndarray:
        """A full field column (used by sampling; one column, not the records)."""
        parts = [chunk.records[name] for chunk in self.chunks()]
        if not parts:
            return np.empty(0, dtype=self.schema.dtype[name])
        return np.concatenate(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ChunkedDataset({self.schema.id!r}, rows [{self.start}, "
            f"{self.start + self.num_records}) of {self._total_records}, "
            f"chunk={self.chunk_records})"
        )


def iter_dataset_chunks(data, chunk_records: int) -> Iterator[Dataset]:
    """Budget-sized chunks of an in-memory *or* chunked flat dataset.

    The shuffle/sort paths call this on whatever a job's source is: a
    :class:`ChunkedDataset` streams from disk, an in-memory
    :class:`~repro.core.dataset.Dataset` is sliced without copying the
    whole array at once.
    """
    if isinstance(data, ChunkedDataset):
        yield from data.chunks()
        return
    flat = data.to_flat()
    n = len(flat)
    chunk_records = max(1, int(chunk_records))
    for pos in range(0, n, chunk_records):
        yield Dataset(
            schema=flat.schema,
            records=flat.records[pos : min(pos + chunk_records, n)],
        )
