"""External merge sort over spill run files.

The classic two-phase design, specialized to the columnar run-file layout:

1. **Run formation** — each budget-sized chunk is stable-argsorted in
   memory and written out as one sorted run (frames small enough that a
   k-way merge holding one frame per run stays inside the budget).
2. **k-way merge** — a heap over one cursor per run streams records out
   in globally sorted order.  When more runs exist than the merge fan-in
   allows, consecutive groups are merged into longer runs first
   (multi-pass), so the number of frames resident at once never exceeds
   ``max_fanin + 1``.

Stability is the load-bearing property (the paper's cyclic distribution
depends on tie order): chunks are added in input order, runs are numbered
in creation order, and the heap breaks key ties by run ordinal — so equal
keys come out in exactly the order a stable in-memory sort of the
concatenated input would produce, for any budget and any fan-in.
"""

from __future__ import annotations

import heapq
import os
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

import numpy as np

from repro.ooc.runfile import Frame, RunReader, RunWriter, SpillManifest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ooc.spill import OOCContext

#: default widest merge; beyond this, runs are combined in extra passes
DEFAULT_MAX_FANIN = 8


def sort_key_array(column: np.ndarray, ascending: bool) -> np.ndarray:
    """The comparable sort key for a key column (mirrors ``Sort.sort_indices``).

    Descending sorts negate the key (casting unsigned/int to int64 first)
    instead of reversing, which keeps ties stable — the exact rule the
    in-memory operator applies, so external and in-memory runs agree
    bit-for-bit.
    """
    if ascending:
        return column
    if column.dtype.kind in "iu":
        return -column.astype(np.int64, copy=False)
    return -column


class _Cursor:
    """Streaming read position inside one sorted run (one frame resident)."""

    __slots__ = ("_frames", "keys", "values", "i")

    def __init__(self, reader: RunReader) -> None:
        self._frames = reader.frames()
        self.keys: Optional[np.ndarray] = None
        self.values: Optional[np.ndarray] = None
        self.i = 0
        self._next_frame()

    def _next_frame(self) -> None:
        for frame in self._frames:
            if len(frame):
                self.keys = frame.keys
                self.values = frame.values
                self.i = 0
                return
        self.keys = None
        self.values = None

    @property
    def exhausted(self) -> bool:
        return self.keys is None

    def current_key(self):
        return self.keys[self.i]

    def pop(self):
        """The current record; advances (loading the next frame if needed)."""
        value = self.values[self.i]
        self.i += 1
        if self.i >= len(self.values):
            self._next_frame()
        return value


def merge_run_frames(
    manifests: Sequence[SpillManifest], frame_records: int
) -> Iterator[Frame]:
    """k-way merge of sorted runs, streamed as frames of ``frame_records``.

    Holds one input frame per run plus one output frame — the caller
    bounds memory by bounding ``len(manifests)`` (the fan-in) and the
    frame size.  Ties break by run ordinal, preserving input order.
    """
    if not manifests:
        return
    if len(manifests) == 1:
        # single run: already sorted, re-stream its frames verbatim
        yield from RunReader(manifests[0].path).frames()
        return
    cursors = [_Cursor(RunReader(m.path)) for m in manifests]
    key_dtype = None
    value_dtype = None
    for m in manifests:
        reader = RunReader(m.path)
        key_dtype, value_dtype = reader.key_dtype, reader.value_dtype
        reader.close()
        break
    # heap entries are (key, run ordinal): unique per run, so the cursor
    # itself is never compared
    heap: list[tuple] = []
    for ordinal, cur in enumerate(cursors):
        if not cur.exhausted:
            heap.append((cur.current_key(), ordinal))
    heapq.heapify(heap)
    out_keys: list = []
    out_values: list = []
    while heap:
        key, ordinal = heapq.heappop(heap)
        cur = cursors[ordinal]
        out_keys.append(key)
        out_values.append(cur.pop())
        if not cur.exhausted:
            heapq.heappush(heap, (cur.current_key(), ordinal))
        if len(out_values) >= frame_records:
            yield Frame(
                values=np.array(out_values, dtype=value_dtype),
                keys=np.array(out_keys, dtype=key_dtype),
            )
            out_keys, out_values = [], []
    if out_values:
        yield Frame(
            values=np.array(out_values, dtype=value_dtype),
            keys=np.array(out_keys, dtype=key_dtype),
        )


class ExternalSorter:
    """Sorts an unbounded stream of chunks under a fixed memory budget.

    Feed unsorted ``(keys, values)`` chunks with :meth:`add_chunk` in
    input order, then stream the merged output with :meth:`merged_frames`
    (or materialize it with :meth:`sorted_values` when the caller owns
    the result anyway).
    """

    def __init__(
        self,
        ctx: "OOCContext",
        value_dtype: np.dtype,
        key_dtype: np.dtype = np.dtype(np.int64),
        max_fanin: int = DEFAULT_MAX_FANIN,
    ) -> None:
        self.ctx = ctx
        self.value_dtype = np.dtype(value_dtype)
        self.key_dtype = np.dtype(key_dtype)
        self.max_fanin = max(2, int(max_fanin))
        # one input frame per merged run + the output frame must all fit
        # in a chunk's worth of budget
        itemsize = self.value_dtype.itemsize + self.key_dtype.itemsize
        self.frame_records = max(
            1, self.ctx.chunk_records(itemsize) // (self.max_fanin + 1)
        )
        self.runs: list[SpillManifest] = []

    def add_chunk(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Stable-sort one chunk and write it out as a sorted run."""
        if not len(values):
            return
        order = np.argsort(keys, kind="stable")
        self._write_run(keys[order], values[order])

    def add_sorted_chunk(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Write an already-sorted chunk as a run (no local sort)."""
        if len(values):
            self._write_run(keys, values)

    def _write_run(self, keys: np.ndarray, values: np.ndarray) -> None:
        writer = RunWriter(
            self.ctx.new_run_path("sort"),
            self.value_dtype,
            self.key_dtype,
            source=self.ctx.rank,
        )
        for pos in range(0, len(values), self.frame_records):
            end = min(pos + self.frame_records, len(values))
            writer.append(values[pos:end], keys=keys[pos:end])
        manifest = writer.close()
        self.ctx.stats.record_run(manifest)
        self.runs.append(manifest)

    def merged_frames(self) -> Iterator[Frame]:
        """The globally sorted stream, frame at a time, within budget."""
        runs = self.runs
        # multi-pass: collapse consecutive groups until one merge suffices
        while len(runs) > self.max_fanin:
            next_runs: list[SpillManifest] = []
            for i in range(0, len(runs), self.max_fanin):
                group = runs[i : i + self.max_fanin]
                if len(group) == 1:
                    next_runs.append(group[0])
                    continue
                writer = RunWriter(
                    self.ctx.new_run_path("merge"),
                    self.value_dtype,
                    self.key_dtype,
                    source=self.ctx.rank,
                )
                for frame in merge_run_frames(group, self.frame_records):
                    writer.append(frame.values, keys=frame.keys)
                manifest = writer.close()
                self.ctx.stats.record_run(manifest)
                self.ctx.stats.record_merge(len(group))
                next_runs.append(manifest)
                for spent in group:
                    self._discard(spent)
            runs = next_runs
        if len(runs) > 1:
            self.ctx.stats.record_merge(len(runs))
        yield from merge_run_frames(runs, self.frame_records)

    def sorted_values(self) -> np.ndarray:
        """The fully sorted values as one array (caller materializes anyway)."""
        frames = [f.values for f in self.merged_frames()]
        if not frames:
            return np.empty(0, dtype=self.value_dtype)
        return np.concatenate(frames)

    @staticmethod
    def _discard(manifest: SpillManifest) -> None:
        """Drop an intermediate run consumed by a merge pass (best effort)."""
        try:
            os.remove(manifest.path)
        except OSError:  # pragma: no cover - cleanup only
            pass


def external_sort_chunks(
    chunks: Iterator[tuple[np.ndarray, np.ndarray]],
    ctx: "OOCContext",
    value_dtype: np.dtype,
    key_dtype: np.dtype = np.dtype(np.int64),
    max_fanin: int = DEFAULT_MAX_FANIN,
) -> ExternalSorter:
    """Feed ``(keys, values)`` chunks into a sorter and return it ready to merge."""
    sorter = ExternalSorter(ctx, value_dtype, key_dtype, max_fanin=max_fanin)
    for keys, values in chunks:
        sorter.add_chunk(keys, values)
    return sorter
