"""The spillable shuffle: per-destination run files exchanged by manifest.

In the simulated cluster every rank is a thread sharing one filesystem, so
a spilled shuffle never ships record payloads through the fabric at all:
each sender drains its outgoing buckets into one crc32-framed run file per
destination rank, and the ``alltoall`` exchanges only the tiny
:class:`~repro.ooc.runfile.SpillManifest` descriptors.  The receiver then
streams the frames back from disk **in source-rank order** — the same
order the in-memory ``alltoall`` + concat produces — which is what keeps a
spilled run bit-identical to the fast path.

:class:`OOCContext` is the per-rank handle threaded through a budgeted
execution: it owns the budget, names run files uniquely per rank, and
accumulates the spill counters that land in ``PerfCounters`` (and, per
job, in checkpoint payloads as run-file manifests).
"""

from __future__ import annotations

import itertools
import os
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.ooc.budget import MemoryBudget
from repro.ooc.runfile import (
    Frame,
    RunReader,
    RunWriter,
    SpillManifest,
    SpillStats,
)


class OOCContext:
    """Per-rank state of one memory-budgeted execution."""

    def __init__(
        self,
        budget: MemoryBudget,
        spill_dir: str,
        rank: int = 0,
        max_fanin: int = 8,
    ) -> None:
        self.budget = budget
        self.spill_dir = os.fspath(spill_dir)
        self.rank = rank
        self.max_fanin = max_fanin
        self.stats = SpillStats()
        self._names = itertools.count()

    def new_run_path(self, kind: str) -> str:
        """A fresh run-file path, unique across this rank's lifetime."""
        return os.path.join(
            self.spill_dir, f"rank{self.rank:03d}-{kind}-{next(self._names):06d}.run"
        )

    def chunk_records(self, itemsize: int) -> int:
        """Records per streamed chunk for ``itemsize``-byte records."""
        return self.budget.chunk_records(itemsize)

    def should_spill(self, nbytes: int) -> bool:
        """Whether a working set of ``nbytes`` must go through run files."""
        return self.budget.exceeds(nbytes)

    def manifest_mark(self) -> int:
        """Position in the manifest log (to slice per-job manifests)."""
        return len(self.stats.manifests)

    def manifests_since(self, mark: int) -> list[dict]:
        """Manifests recorded after ``mark``, as checkpointable dicts."""
        return [m.as_dict() for m in self.stats.manifests[mark:]]

    def fold_into(self, perf) -> None:
        """Fold the accumulated spill counters into a ``PerfCounters``."""
        perf.add_spill(self.stats.as_dict())


class SpillableShuffle:
    """Drains per-destination buckets into one run file per destination.

    Senders call :meth:`append` once per (chunk, destination) bucket;
    :meth:`finish` closes the writers and returns one manifest (or
    ``None``) per destination, ready to be ``alltoall``-ed.  Frames carry
    an optional ``tag`` (the distribute path stores the partition id) and
    optional per-record keys (the distribute path stores global indexes;
    the sort path stores sort keys).
    """

    def __init__(
        self,
        ctx: OOCContext,
        num_dests: int,
        value_dtype: np.dtype,
        key_dtype: Optional[np.dtype] = None,
        kind: str = "shuffle",
    ) -> None:
        self.ctx = ctx
        self.value_dtype = np.dtype(value_dtype)
        self.key_dtype = np.dtype(key_dtype) if key_dtype is not None else None
        self.kind = kind
        self._writers: list[Optional[RunWriter]] = [None] * num_dests

    def append(
        self,
        dest: int,
        values: np.ndarray,
        keys: Optional[np.ndarray] = None,
        tag: int = 0,
    ) -> None:
        """Append one framed bucket bound for destination ``dest``."""
        if not len(values):
            return
        writer = self._writers[dest]
        if writer is None:
            writer = RunWriter(
                self.ctx.new_run_path(self.kind),
                self.value_dtype,
                self.key_dtype,
                source=self.ctx.rank,
            )
            self._writers[dest] = writer
        writer.append(values, keys=keys, tag=tag)

    def finish(self) -> list[Optional[SpillManifest]]:
        """Close every writer; one manifest per destination (None if empty)."""
        manifests: list[Optional[SpillManifest]] = []
        for writer in self._writers:
            if writer is None:
                manifests.append(None)
                continue
            manifest = writer.close()
            self.ctx.stats.record_run(manifest)
            manifests.append(manifest)
        self._writers = [None] * len(self._writers)
        return manifests


def drain_frames(
    manifests: Sequence[Optional[SpillManifest]],
) -> Iterator[Frame]:
    """Stream frames of received manifests in the given (source-rank) order."""
    for manifest in manifests:
        if manifest is None:
            continue
        yield from RunReader(manifest.path).frames()


def concat_manifest_values(
    manifests: Sequence[Optional[SpillManifest]], value_dtype: np.dtype
) -> np.ndarray:
    """All received records in source-rank order as one array.

    The receive-side materialization point: identical bytes to the
    in-memory ``alltoall`` + concat, because manifests arrive in source
    order and frames replay each sender's append order.
    """
    parts = [frame.values for frame in drain_frames(manifests)]
    if not parts:
        return np.empty(0, dtype=value_dtype)
    return np.concatenate(parts)
