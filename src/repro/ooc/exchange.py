"""Out-of-core variants of the distributed operator exchanges.

Each function here is the budget-aware twin of one runtime exchange
(:meth:`MPIRuntime._sort_distributed`, :meth:`MapReduceRuntime._sort_job`,
…), threaded in by the runtimes only when a memory budget is active.  The
shape is always the same:

1. **Uniform decision** — an ``allreduce(MAX)`` over per-rank working-set
   sizes decides *collectively* whether to spill, so every rank takes the
   same path and the collective sequences stay aligned (a rank-local
   decision would deadlock the simulated fabric).
2. **Fast-path fallback** — below the budget the call simply delegates to
   the runtime's own in-memory exchange (materializing a chunked input
   first), so small inputs behave exactly as without a budget.
3. **Spilled path** — sources are consumed chunk at a time, each chunk's
   buckets drain into per-destination run files, the ``alltoall`` ships
   only manifests, and receivers stream frames back in source-rank order.

Bit-identity with the in-memory path holds by construction: bucketization
is stable within each chunk and chunks preserve input order, so each
sender's run replays its in-memory outbox order; manifests are drained in
source-rank order, matching the in-memory concat; and the external sort
breaks key ties by run ordinal (arrival order).  Range boundaries derived
from a bounded sample may differ from the in-memory run, but boundaries
only steer *placement* — the final partitions depend on global order
alone, which is boundary-invariant (the same invariant that makes results
rank-count-independent).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Callable, Optional

import numpy as np

from repro.core.dataset import Dataset, concat
from repro.core.runtime import policy_partition_ids
from repro.mapreduce.columnar import KVBatch, PerfCounters, bucketize
from repro.mapreduce.sampling import sample_key_ranges
from repro.mpi import MAX, SUM
from repro.mpi.comm import Communicator
from repro.ooc.chunked import ChunkedDataset, iter_dataset_chunks
from repro.ooc.extsort import ExternalSorter, sort_key_array
from repro.ooc.runfile import RunReader
from repro.ooc.spill import (
    OOCContext,
    SpillableShuffle,
    concat_manifest_values,
    drain_frames,
)


def uniform_spill_decision(comm: Communicator, ctx: OOCContext, nbytes: int) -> bool:
    """Collectively true when any rank's working set exceeds the budget."""
    return bool(comm.allreduce(int(nbytes), MAX) > ctx.budget.limit)


def ensure_dataset(source: Any) -> Dataset:
    """Materialize a chunked view; pass an in-memory dataset through."""
    if isinstance(source, ChunkedDataset):
        return source.materialize()
    return source


def _spill_span(comm: Communicator, name: str, records: int, nbytes: int):
    if comm.recorder is None:
        return nullcontext()
    return comm.recorder.span(
        name, category="spill", rank=comm.rank, clock=comm.clock,
        attrs={"records": records, "nbytes": nbytes},
    )


def _bounded_key_sample(source: Any, key: str, sample_size: int) -> np.ndarray:
    """A strided key sample of bounded size (never the full key column).

    In-memory sources just expose their column (already resident); chunked
    sources stream and keep every ``stride``-th key, bounding the sample to
    ~4x the reservoir size the boundary derivation draws from anyway.
    """
    if not isinstance(source, ChunkedDataset):
        return np.asarray(source.column(key))
    n = len(source)
    stride = max(1, n // max(1, 4 * sample_size))
    parts: list[np.ndarray] = []
    pos = 0
    for chunk in source.chunks():
        col = chunk.records[key]
        first = (-pos) % stride
        parts.append(col[first::stride])
        pos += len(col)
    if not parts:
        return np.empty(0, dtype=source.schema.dtype[key])
    return np.concatenate(parts)


def _spilled_range_exchange(
    comm: Communicator,
    source: Any,
    key: str,
    ascending: bool,
    reducers: int,
    ctx: OOCContext,
    perf: Optional[PerfCounters],
    sample_size: int,
) -> list:
    """Range-shuffle a (possibly chunked) source through spill files.

    Returns the received manifests in source-rank order.  Shared by the
    sort and group exchanges: group is simply the ``ascending`` case with
    raw keys.
    """
    schema = source.schema
    sample = sort_key_array(
        np.asarray(_bounded_key_sample(source, key, sample_size)), ascending
    )
    boundaries = np.asarray(
        sample_key_ranges(comm, sample, num_reducers=reducers, sample_size=sample_size)
    )
    shuffle = SpillableShuffle(ctx, comm.size, schema.dtype, kind="range")
    n_local = len(source)
    with _spill_span(comm, "spill-shuffle", n_local, source.nbytes):
        for chunk in iter_dataset_chunks(source, ctx.chunk_records(schema.itemsize)):
            sort_keys = sort_key_array(chunk.records[key], ascending)
            reducer_of = np.searchsorted(boundaries, sort_keys, side="left")
            owners = (reducer_of * comm.size) // reducers
            for dest, idx in enumerate(bucketize(owners, comm.size)):
                if len(idx):
                    shuffle.append(dest, chunk.records[idx])
            if perf is not None:
                perf.count_move(len(chunk.records), chunk.records.nbytes)
        inbox = comm.alltoall(shuffle.finish())
    return inbox


def ooc_sort_exchange(
    comm: Communicator,
    op: Any,
    source: Any,
    perf: Optional[PerfCounters],
    ctx: OOCContext,
    *,
    sample_size: int,
    fallback: Callable[[Dataset], Dataset],
    reducers: Optional[int] = None,
    charge_entry: Optional[Callable[[], None]] = None,
    charge_local: Optional[Callable[[int], None]] = None,
) -> Dataset:
    """Distributed sort under a budget: spilled range shuffle + external sort."""
    packed = bool(getattr(source, "is_packed", False))
    if packed or not uniform_spill_decision(comm, ctx, source.nbytes):
        return fallback(ensure_dataset(source))
    if charge_entry is not None:
        charge_entry()
    reducers = reducers or comm.size
    schema = source.schema
    inbox = _spilled_range_exchange(
        comm, source, op.key, op.ascending, reducers, ctx, perf, sample_size
    )
    received_nbytes = sum(m.nbytes for m in inbox if m is not None)
    received_records = sum(m.num_records for m in inbox if m is not None)
    if charge_local is not None:
        charge_local(received_records)
    plain = op.addon is None
    if plain and ctx.should_spill(received_nbytes):
        # received side exceeds the budget too: external merge sort, never
        # holding more than fan-in + 1 frames of records at once
        key_dtype = sort_key_array(
            np.empty(0, dtype=schema.dtype[op.key]), op.ascending
        ).dtype
        sorter = ExternalSorter(
            ctx, schema.dtype, key_dtype=key_dtype, max_fanin=ctx.max_fanin
        )
        for frame in drain_frames(inbox):
            sorter.add_chunk(
                sort_key_array(frame.values[op.key], op.ascending), frame.values
            )
        return Dataset(schema=schema, records=sorter.sorted_values())
    received = Dataset(
        schema=schema, records=concat_manifest_values(inbox, schema.dtype)
    )
    return op.apply_local(received)


def ooc_group_exchange(
    comm: Communicator,
    op: Any,
    source: Any,
    perf: Optional[PerfCounters],
    ctx: OOCContext,
    *,
    sample_size: int,
    fallback: Callable[[Dataset], Dataset],
    charge_entry: Optional[Callable[[], None]] = None,
    charge_local: Optional[Callable[[int], None]] = None,
) -> Dataset:
    """Distributed group under a budget: spilled range shuffle + local pack.

    The pack itself materializes (grouped layouts are pointer-rich, not
    fixed-width), so the budget here bounds the *shuffle*, which dominates.
    """
    packed = bool(getattr(source, "is_packed", False))
    if packed or not uniform_spill_decision(comm, ctx, source.nbytes):
        return fallback(ensure_dataset(source))
    if charge_entry is not None:
        charge_entry()
    schema = source.schema
    inbox = _spilled_range_exchange(
        comm, source, op.key, True, comm.size, ctx, perf, sample_size
    )
    if charge_local is not None:
        charge_local(sum(m.num_records for m in inbox if m is not None))
    received = Dataset(
        schema=schema, records=concat_manifest_values(inbox, schema.dtype)
    )
    return op.apply_local(received)


def ooc_distribute_exchange(
    comm: Communicator,
    op: Any,
    source: Any,
    perf: Optional[PerfCounters],
    ctx: OOCContext,
    *,
    dest_of: Callable[[int], int],
    backend: str = "MPI",
    charge_entry: Optional[Callable[[], None]] = None,
    charge_assemble: Optional[Callable[[int], None]] = None,
) -> dict[int, Dataset]:
    """Distribute under a budget: frames tagged with their partition id.

    Each stream is handled independently (packed streams cannot be framed
    as fixed-width records and take the in-memory exchange); spilled
    frames carry the partition id as their tag and the global entry
    indexes as their keys, so the receive side reassembles partitions by
    sorting frames on ``(stream, first global index)`` — exactly the
    in-memory chunk order.
    """
    streams = [source] if not isinstance(source, (list, tuple)) else list(source)
    num_p = op.num_partitions
    collected: dict[int, list[tuple[int, int, Dataset]]] = {}
    spilled_any = False
    for stream_idx, stream in enumerate(streams):
        n_local = len(stream)
        offset = comm.exscan(n_local, SUM, identity=0)
        total = comm.allreduce(n_local, SUM)
        packed = bool(getattr(stream, "is_packed", False))
        spill = (not packed) and uniform_spill_decision(comm, ctx, stream.nbytes)
        if not spill:
            stream_ds = ensure_dataset(stream)
            global_idx = np.arange(n_local, dtype=np.int64) + offset
            owners_part = policy_partition_ids(op, global_idx, total, backend=backend)
            outboxes: list[list[tuple[int, int, Any]]] = [[] for _ in range(comm.size)]
            for p, idx in enumerate(bucketize(owners_part, num_p)):
                if not len(idx):
                    continue
                chunk = stream_ds.take(idx)
                if perf is not None:
                    perf.count_move(len(idx), chunk.nbytes)
                outboxes[dest_of(p)].append((p, int(global_idx[idx[0]]), chunk))
            if comm.recorder is not None:
                with comm.recorder.span(
                    "distribute-shuffle", category="shuffle",
                    rank=comm.rank, clock=comm.clock,
                    attrs={"stream": stream_idx, "records": n_local},
                ):
                    inboxes = comm.alltoall(outboxes)
            else:
                inboxes = comm.alltoall(outboxes)
            for box in inboxes:
                for p, first_idx, chunk in box:
                    collected.setdefault(p, []).append((stream_idx, first_idx, chunk))
            continue
        if charge_entry is not None and not spilled_any:
            charge_entry()
        spilled_any = True
        schema = stream.schema
        shuffle = SpillableShuffle(
            ctx, comm.size, schema.dtype, key_dtype=np.dtype(np.int64), kind="dist"
        )
        with _spill_span(comm, "spill-distribute", n_local, stream.nbytes):
            pos = 0
            for chunk in iter_dataset_chunks(
                stream, ctx.chunk_records(schema.itemsize)
            ):
                records = chunk.records
                global_idx = np.arange(len(records), dtype=np.int64) + offset + pos
                owners_part = policy_partition_ids(
                    op, global_idx, total, backend=backend
                )
                for p, idx in enumerate(bucketize(owners_part, num_p)):
                    if not len(idx):
                        continue
                    if perf is not None:
                        perf.count_move(len(idx), records[idx].nbytes)
                    shuffle.append(
                        dest_of(p), records[idx], keys=global_idx[idx], tag=p
                    )
                pos += len(records)
            inbox = comm.alltoall(shuffle.finish())
        for manifest in inbox:
            if manifest is None:
                continue
            for frame in RunReader(manifest.path).frames():
                collected.setdefault(int(frame.tag), []).append(
                    (
                        stream_idx,
                        int(frame.keys[0]),
                        Dataset(schema=schema, records=frame.values),
                    )
                )
    # assemble owned partitions exactly as the in-memory runtimes do
    result: dict[int, Dataset] = {}
    owned = range(comm.rank, num_p, comm.size)
    if not owned:
        return result
    empty: Optional[Dataset] = None
    for p in owned:
        chunks = collected.get(p)
        if not chunks:
            if empty is None:
                first = streams[0]
                if isinstance(first, ChunkedDataset):
                    empty = Dataset(
                        schema=first.schema,
                        records=np.empty(0, dtype=first.schema.dtype),
                    )
                else:
                    empty = first.take(np.empty(0, dtype=np.int64)).to_flat()
            result[p] = empty
            continue
        chunks.sort(key=lambda t: (t[0], t[1]))
        flat = [c.to_flat() for _, _, c in chunks]
        if charge_assemble is not None:
            charge_assemble(sum(len(f) for f in flat))
        result[p] = concat(flat) if len(flat) > 1 else flat[0]
    return result


def ooc_shuffle_kv(engine: Any, kv: KVBatch, partitioner: Any) -> KVBatch:
    """Budgeted twin of the engine's columnar shuffle (the MR-MPI path)."""
    comm = engine.comm
    ctx: OOCContext = engine.ooc
    if not uniform_spill_decision(comm, ctx, kv.nbytes):
        return engine._shuffle_batch(kv, partitioner)
    size = comm.size
    chunk_records = ctx.chunk_records(
        kv.keys.dtype.itemsize + kv.values.dtype.itemsize
    )
    shuffle = SpillableShuffle(
        ctx, size, kv.values.dtype, key_dtype=kv.keys.dtype, kind="kv"
    )
    if engine.perf is not None:
        engine.perf.count_move(len(kv), kv.nbytes)
    with _spill_span(comm, "spill-shuffle", len(kv), kv.nbytes):
        for pos in range(0, len(kv), chunk_records):
            keys = kv.keys[pos : pos + chunk_records]
            values = kv.values[pos : pos + chunk_records]
            owners = partitioner.partition_array(keys) % size
            for dest, idx in enumerate(bucketize(owners, size)):
                if len(idx):
                    shuffle.append(dest, values[idx], keys=keys[idx])
        inbox = comm.alltoall(shuffle.finish())
    key_parts: list[np.ndarray] = []
    value_parts: list[np.ndarray] = []
    for frame in drain_frames(inbox):
        key_parts.append(frame.keys)
        value_parts.append(frame.values)
    if not value_parts:
        return KVBatch(
            keys=np.empty(0, dtype=kv.keys.dtype),
            values=np.empty(0, dtype=kv.values.dtype),
        )
    return KVBatch(
        keys=np.concatenate(key_parts), values=np.concatenate(value_parts)
    )
