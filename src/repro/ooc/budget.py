"""The per-rank memory budget accountant of the out-of-core subsystem.

A :class:`MemoryBudget` is a hard byte ceiling on the working set one
simulated rank may hold while streaming a dataset: chunk sizes, spill
buffer flush points and merge fan-ins are all derived from it.  The
budget string grammar (``"64MB"``, ``"512KiB"``, ``"1048576"``) follows
the block-size-as-a-tunable design of Cantini et al. — the chunk size is
an explicit knob, not a compile-time constant.

The accountant also *tracks*: callers reserve bytes while buffers are
live and release them when they are flushed or dropped, and the recorded
``peak`` is what the out-of-core benchmark asserts stays under the
ceiling (times a small constant for transient numpy copies).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Union

from repro.errors import PaParError


class MemoryBudgetError(PaParError):
    """An invalid memory-budget specification or accounting violation."""


#: recognised unit suffixes, case-insensitive; decimal and IEC spellings
#: both mean the binary (1024-based) quantity, matching how operators size
#: buffers in practice
_UNITS = {
    "": 1,
    "b": 1,
    "k": 1 << 10,
    "kb": 1 << 10,
    "kib": 1 << 10,
    "m": 1 << 20,
    "mb": 1 << 20,
    "mib": 1 << 20,
    "g": 1 << 30,
    "gb": 1 << 30,
    "gib": 1 << 30,
}

_BUDGET_RE = re.compile(r"^\s*(?P<number>\d+(?:\.\d+)?)\s*(?P<unit>[a-zA-Z]*)\s*$")


def parse_memory_budget(spec: Union[str, int, float]) -> int:
    """Parse a budget spec (``"64MB"``, ``"512KiB"``, ``65536``) into bytes."""
    if isinstance(spec, bool):
        raise MemoryBudgetError(f"memory budget must be a size, got {spec!r}")
    if isinstance(spec, (int, float)):
        nbytes = int(spec)
        if nbytes <= 0:
            raise MemoryBudgetError(f"memory budget must be positive, got {spec!r}")
        return nbytes
    m = _BUDGET_RE.match(str(spec))
    if m is None:
        raise MemoryBudgetError(
            f"cannot parse memory budget {spec!r}; expected e.g. '64MB', '512KiB', '1048576'"
        )
    unit = m.group("unit").lower()
    if unit not in _UNITS:
        raise MemoryBudgetError(
            f"unknown memory-budget unit {m.group('unit')!r} in {spec!r}; "
            f"use one of {sorted(u for u in _UNITS if u)}"
        )
    nbytes = int(float(m.group("number")) * _UNITS[unit])
    if nbytes <= 0:
        raise MemoryBudgetError(f"memory budget must be positive, got {spec!r}")
    return nbytes


def format_budget(nbytes: int) -> str:
    """Render a byte count in the budget grammar (``65536 -> '64KB'``)."""
    for unit, scale in (("GB", 1 << 30), ("MB", 1 << 20), ("KB", 1 << 10)):
        if nbytes % scale == 0 and nbytes >= scale:
            return f"{nbytes // scale}{unit}"
    return str(nbytes)


@dataclass
class MemoryBudget:
    """A hard per-rank byte ceiling plus live-bytes accounting.

    ``chunk_bytes`` — the streaming granularity — defaults to a quarter of
    the limit so an input chunk, its bucketized slices and an output frame
    can coexist under the ceiling.
    """

    limit: int
    #: fraction of the limit one streamed chunk may occupy
    chunk_fraction: float = 0.25
    current: int = field(default=0, init=False)
    peak: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if isinstance(self.limit, str):
            self.limit = parse_memory_budget(self.limit)
        self.limit = int(self.limit)
        if self.limit <= 0:
            raise MemoryBudgetError(f"memory budget must be positive, got {self.limit}")
        if not 0 < self.chunk_fraction <= 1:
            raise MemoryBudgetError(
                f"chunk_fraction must be in (0, 1], got {self.chunk_fraction}"
            )

    @classmethod
    def coerce(cls, value: Union["MemoryBudget", str, int, None]) -> "MemoryBudget | None":
        """Normalize a user-facing budget value (spec string, bytes, or None)."""
        if value is None or isinstance(value, MemoryBudget):
            return value
        return cls(parse_memory_budget(value))

    @property
    def chunk_bytes(self) -> int:
        """Bytes one streamed chunk may occupy (at least one record's worth)."""
        return max(1, int(self.limit * self.chunk_fraction))

    def chunk_records(self, itemsize: int) -> int:
        """Records per streamed chunk for ``itemsize``-byte records (>= 1)."""
        if itemsize <= 0:
            raise MemoryBudgetError(f"itemsize must be positive, got {itemsize}")
        return max(1, self.chunk_bytes // itemsize)

    def exceeds(self, nbytes: int) -> bool:
        """Whether holding ``nbytes`` at once would break the ceiling."""
        return nbytes > self.limit

    # -- live-bytes accounting ---------------------------------------------

    def reserve(self, nbytes: int) -> None:
        """Account ``nbytes`` as live (buffered in memory)."""
        self.current += int(nbytes)
        if self.current > self.peak:
            self.peak = self.current

    def release(self, nbytes: int) -> None:
        """Account ``nbytes`` as no longer live (flushed or dropped)."""
        self.current = max(0, self.current - int(nbytes))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemoryBudget({format_budget(self.limit)}, "
            f"current={self.current}, peak={self.peak})"
        )
