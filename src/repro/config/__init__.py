"""Configuration parsing: PaPar's two user-facing configuration files.

* :mod:`repro.config.schema` — input-data descriptions (Figures 4/5);
* :mod:`repro.config.workflow` — workflow descriptions (Figures 8/10) with
  ``$variable`` resolution;
* :mod:`repro.config.operators` — custom operator registration (Figure 7).
"""

from repro.config.operators import (
    OperatorRegistration,
    load_operator_config,
    parse_operator_config,
)
from repro.config.schema import (
    BLAST_INPUT_XML,
    EDGE_INPUT_XML,
    load_input_config,
    parse_input_config,
)
from repro.config.workflow import (
    AddOnSpec,
    Bindings,
    OperatorSpec,
    ParamSpec,
    WorkflowSpec,
    bind_arguments,
    load_workflow_config,
    parse_workflow_config,
)

__all__ = [
    "parse_input_config",
    "load_input_config",
    "BLAST_INPUT_XML",
    "EDGE_INPUT_XML",
    "parse_workflow_config",
    "load_workflow_config",
    "WorkflowSpec",
    "OperatorSpec",
    "ParamSpec",
    "AddOnSpec",
    "Bindings",
    "bind_arguments",
    "OperatorRegistration",
    "parse_operator_config",
    "load_operator_config",
]
