"""The paper's two case-study workflow configurations (Figures 8 and 10).

Kept verbatim-equivalent to the paper (with its typos fixed: Figure 8 writes
``ouputPath`` in two places and Figure 10 references ``$sort.outputPath``
where it means ``$group.outputPath``).
"""

#: Figure 8 — muBLASTP database partitioning: sort by seq_size, distribute
#: cyclically ("roundRobin" in the figure).
BLAST_WORKFLOW_XML = """\
<workflow id="blast_partition" name="BLAST database partition">
  <arguments>
    <param name="input_path" type="hdfs" format="blast_db"/>
    <param name="output_path" type="hdfs" format="blast_db"/>
    <param name="num_partitions" type="integer"/>
    <param name="num_reducers" type="integer" value="3"/>
  </arguments>
  <operators>
    <operator id="sort" operator="Sort" num_reducers="$num_reducers">
      <param name="inputPath" type="String" value="$input_path"/>
      <param name="outputPath" type="String" value="/user/sort_output"/>
      <param name="key" type="KeyId" value="seq_size"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="$sort.outputPath"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="distrPolicy" type="DistrPolicy" value="roundRobin"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>
"""

#: Figure 10 — PowerLyra hybrid-cut: group by in-vertex (count indegree,
#: pack), split by indegree threshold (unpack the high-degree side),
#: distribute with the graphVertexCut policy.
HYBRID_CUT_WORKFLOW_XML = """\
<workflow id="hybrid_cut" name="Hybrid-cut">
  <arguments>
    <param name="input_file" type="hdfs" format="graph_edge"/>
    <param name="output_path" type="hdfs" format="graph_edge"/>
    <param name="num_partitions" type="integer"/>
    <param name="threshold" type="integer"/>
  </arguments>
  <operators>
    <operator id="group" operator="Group">
      <param name="inputPath" type="String" value="$input_file"/>
      <param name="outputPath" type="String" value="/tmp/group" format="pack"/>
      <param name="key" type="KeyId" value="vertex_b"/>
      <addon operator="count" key="vertex_b" attr="indegree"/>
    </operator>
    <operator id="split" operator="Split">
      <param name="inputPath" type="String" value="$group.outputPath"/>
      <param name="outputPathList" type="StringList"
             value="/tmp/split/high_degree,/tmp/split/low_degree"
             format="unpack,orig"/>
      <param name="key" type="KeyId" value="$group.$indegree"/>
      <param name="policy" type="SplitPolicy"
             value="{&gt;=, $threshold},{&lt;, $threshold}"/>
    </operator>
    <operator id="distr" operator="Distribute">
      <param name="inputPath" type="String" value="/tmp/split/"/>
      <param name="outputPath" type="String" value="$output_path"/>
      <param name="policy" type="DistrPolicy" value="graphVertexCut"/>
      <param name="numPartitions" type="integer" value="$num_partitions"/>
    </operator>
  </operators>
</workflow>
"""
