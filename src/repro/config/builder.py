"""Fluent programmatic construction of workflow specifications.

The XML dialect is the paper's interface; Python callers can build the same
:class:`~repro.config.workflow.WorkflowSpec` without writing XML:

    wf = (WorkflowBuilder("my_partition")
          .argument("input_path", type="hdfs", format="blast_db")
          .argument("output_path", type="hdfs", format="blast_db")
          .argument("num_partitions", type="integer")
          .sort("sort", key="seq_size", input_path="$input_path",
                output_path="/tmp/sorted")
          .distribute("distr", policy="roundRobin",
                      num_partitions="$num_partitions",
                      input_path="$sort.outputPath",
                      output_path="$output_path")
          .build())

The result plans, runs, and serializes (``workflow_to_xml``) exactly like a
parsed configuration.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config.workflow import AddOnSpec, OperatorSpec, ParamSpec, WorkflowSpec
from repro.errors import WorkflowError


class WorkflowBuilder:
    """Accumulates arguments and operators, then emits a WorkflowSpec."""

    def __init__(self, workflow_id: str, name: Optional[str] = None) -> None:
        if not workflow_id:
            raise WorkflowError("workflow id must be non-empty")
        self._spec = WorkflowSpec(id=workflow_id, name=name or workflow_id)

    # -- arguments -----------------------------------------------------------

    def argument(
        self,
        name: str,
        type: str = "String",
        value: Optional[str] = None,
        format: Optional[str] = None,
    ) -> "WorkflowBuilder":
        """Declare one workflow argument (a Figure 8 ``<param>``)."""
        if name in self._spec.arguments:
            raise WorkflowError(f"argument {name!r} declared twice")
        self._spec.arguments[name] = ParamSpec(name=name, type=type, value=value, format=format)
        return self

    # -- operators ---------------------------------------------------------------

    def _add_operator(self, op: OperatorSpec) -> "WorkflowBuilder":
        if any(existing.id == op.id for existing in self._spec.operators):
            raise WorkflowError(f"operator id {op.id!r} declared twice")
        self._spec.operators.append(op)
        return self

    def sort(
        self,
        op_id: str,
        key: str,
        input_path: Optional[str] = None,
        output_path: Optional[str] = None,
        descending: bool = False,
        num_reducers: Optional[str] = None,
    ) -> "WorkflowBuilder":
        """Append a Sort operator."""
        op = OperatorSpec(id=op_id, operator="Sort")
        op.params["key"] = ParamSpec("key", type="KeyId", value=key)
        if input_path:
            op.params["inputPath"] = ParamSpec("inputPath", value=input_path)
        if output_path:
            op.params["outputPath"] = ParamSpec("outputPath", value=output_path)
        if descending:
            op.params["flag"] = ParamSpec("flag", type="integer", value="1")
        if num_reducers is not None:
            op.attrs["num_reducers"] = str(num_reducers)
        return self._add_operator(op)

    def group(
        self,
        op_id: str,
        key: str,
        input_path: Optional[str] = None,
        output_path: Optional[str] = None,
        output_format: str = "pack",
        addons: Sequence[tuple[str, str, Optional[str]]] = (),
    ) -> "WorkflowBuilder":
        """Append a Group operator.

        ``addons`` entries are ``(operator, attr, value_field)`` — e.g.
        ``("count", "indegree", None)``.
        """
        op = OperatorSpec(id=op_id, operator="Group")
        op.params["key"] = ParamSpec("key", type="KeyId", value=key)
        if input_path:
            op.params["inputPath"] = ParamSpec("inputPath", value=input_path)
        op.params["outputPath"] = ParamSpec(
            "outputPath", value=output_path or f"/tmp/{op_id}", format=output_format
        )
        for operator, attr, value_field in addons:
            op.addons.append(
                AddOnSpec(operator=operator, key=key, attr=attr, value=value_field)
            )
        return self._add_operator(op)

    def split(
        self,
        op_id: str,
        key: str,
        policy: str,
        output_paths: Sequence[str],
        output_formats: Optional[Sequence[str]] = None,
        input_path: Optional[str] = None,
    ) -> "WorkflowBuilder":
        """Append a Split operator (``policy`` uses the ``{op, operand}`` grammar)."""
        op = OperatorSpec(id=op_id, operator="Split")
        op.params["key"] = ParamSpec("key", type="KeyId", value=key)
        op.params["policy"] = ParamSpec("policy", type="SplitPolicy", value=policy)
        fmt = ",".join(output_formats) if output_formats else None
        op.params["outputPathList"] = ParamSpec(
            "outputPathList", type="StringList", value=",".join(output_paths), format=fmt
        )
        if input_path:
            op.params["inputPath"] = ParamSpec("inputPath", value=input_path)
        return self._add_operator(op)

    def distribute(
        self,
        op_id: str,
        num_partitions: str,
        policy: str = "cyclic",
        input_path: Optional[str] = None,
        output_path: Optional[str] = None,
    ) -> "WorkflowBuilder":
        """Append a Distribute operator."""
        op = OperatorSpec(id=op_id, operator="Distribute")
        op.params["distrPolicy"] = ParamSpec("distrPolicy", type="DistrPolicy", value=policy)
        op.params["numPartitions"] = ParamSpec(
            "numPartitions", type="integer", value=str(num_partitions)
        )
        if input_path:
            op.params["inputPath"] = ParamSpec("inputPath", value=input_path)
        if output_path:
            op.params["outputPath"] = ParamSpec("outputPath", value=output_path)
        return self._add_operator(op)

    # -- finish -------------------------------------------------------------------

    def build(self) -> WorkflowSpec:
        """Validate and return the spec."""
        if not self._spec.operators:
            raise WorkflowError(f"workflow {self._spec.id!r} has no operators")
        return self._spec
