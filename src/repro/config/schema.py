"""Input-data configuration files (paper Section III-A, Figures 4 and 5).

PaPar's programming-free alternative to subclassing Hadoop's ``InputFormat``:
an XML file describing the input layout.  Example (Figure 4)::

    <input id="blast_db" name="BLAST Database file">
      <input_format>binary</input_format>
      <start_position>32</start_position>
      <element>
        <value name="seq_start" type="integer"/>
        <value name="seq_size"  type="integer"/>
        <value name="desc_start" type="integer"/>
        <value name="desc_size"  type="integer"/>
      </element>
    </input>

Text formats interleave ``<delimiter value="\\t"/>`` tags between values
(Figure 5).  Nested ``<element>`` groups are flattened with dotted prefixes
(the paper: "for derived data types, users may need to declare the nested
elements").
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from typing import Optional, Union

from repro.analysis.locate import (
    LocatedTree,
    XMLLocationError,
    format_location,
    parse_located,
)
from repro.errors import ConfigError, SchemaError
from repro.formats.records import Field, RecordSchema

PathLike = Union[str, os.PathLike]

_ESCAPES = {"\\t": "\t", "\\n": "\n", "\\r": "\r", "\\0": "\0"}

#: accepted aliases for field types (the paper capitalizes "String")
_TYPE_ALIASES = {
    "int": "integer",
    "integer": "integer",
    "long": "long",
    "float": "float",
    "double": "double",
    "string": "string",
}


def _unescape(delim: str) -> str:
    return _ESCAPES.get(delim, delim)


def _normalize_type(raw: str) -> str:
    t = _TYPE_ALIASES.get(raw.strip().lower())
    if t is None:
        raise SchemaError(f"unknown field type {raw!r}")
    return t


def _walk_element(
    elem: ET.Element,
    prefix: str,
    tree: Optional[LocatedTree] = None,
    filename: Optional[str] = None,
) -> tuple[list[Field], list[str]]:
    """Flatten ``<value>``/``<delimiter>``/nested ``<element>`` children."""

    def where(node: ET.Element) -> str:
        line = tree.line(node) if tree is not None else None
        return format_location(filename, line)

    fields: list[Field] = []
    delims: list[str] = []
    for child in elem:
        if child.tag == "value":
            name = child.get("name")
            type_ = child.get("type")
            if name is None or type_ is None:
                raise ConfigError(
                    f"<value> requires 'name' and 'type' attributes [{where(child)}]"
                )
            full_name = f"{prefix}{name}" if prefix else name
            fields.append(Field(full_name.replace(".", "__"), _normalize_type(type_)))
        elif child.tag == "delimiter":
            value = child.get("value")
            if value is None:
                raise ConfigError(
                    f"<delimiter> requires a 'value' attribute [{where(child)}]"
                )
            delims.append(_unescape(value))
        elif child.tag == "element":
            name = child.get("name", "")
            sub_prefix = f"{prefix}{name}." if name else prefix
            sub_fields, sub_delims = _walk_element(child, sub_prefix, tree, filename)
            fields.extend(sub_fields)
            delims.extend(sub_delims)
        else:
            raise ConfigError(
                f"unexpected tag <{child.tag}> inside <element> [{where(child)}]"
            )
    return fields, delims


def parse_input_config(source: str, filename: Optional[str] = None) -> RecordSchema:
    """Parse one ``<input>`` document (XML text) into a :class:`RecordSchema`.

    ``filename`` (when given) is woven into error messages as ``file:line``.
    """
    try:
        tree = parse_located(source)
    except XMLLocationError as exc:
        raise ConfigError(
            f"malformed input configuration XML: {exc} "
            f"[{format_location(filename, exc.line)}]"
        ) from exc
    root = tree.root

    def where(node: ET.Element) -> str:
        return format_location(filename, tree.line(node))

    if root.tag != "input":
        raise ConfigError(
            f"expected <input> root element, found <{root.tag}> [{where(root)}]"
        )
    input_id = root.get("id")
    if not input_id:
        raise ConfigError(f"<input> requires an 'id' attribute [{where(root)}]")

    fmt_node = root.find("input_format")
    input_format = (fmt_node.text or "").strip() if fmt_node is not None else "binary"
    if input_format not in ("binary", "text"):
        raise ConfigError(
            f"input_format must be 'binary' or 'text', got {input_format!r} "
            f"[{where(fmt_node if fmt_node is not None else root)}]"
        )

    start_node = root.find("start_position")
    start_position = 0
    if start_node is not None:
        try:
            start_position = int((start_node.text or "").strip())
        except ValueError as exc:
            raise ConfigError(
                f"start_position must be an integer: {start_node.text!r} "
                f"[{where(start_node)}]"
            ) from exc

    elem = root.find("element")
    if elem is None:
        raise ConfigError(f"input {input_id!r} declares no <element> [{where(root)}]")
    fields, delims = _walk_element(elem, "", tree, filename)

    return RecordSchema(
        id=input_id,
        fields=tuple(fields),
        input_format=input_format,
        start_position=start_position,
        delimiters=tuple(delims),
    )


def load_input_config(path: PathLike) -> RecordSchema:
    """Parse an input-data configuration file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_input_config(fh.read(), filename=os.fspath(path))


#: XML text of the paper's Figure 4 (BLAST index) configuration.
BLAST_INPUT_XML = """\
<input id="blast_db" name="BLAST Database file">
  <input_format>binary</input_format>
  <start_position>32</start_position>
  <element>
    <value name="seq_start" type="integer"/>
    <value name="seq_size" type="integer"/>
    <value name="desc_start" type="integer"/>
    <value name="desc_size" type="integer"/>
  </element>
</input>
"""

#: XML text of the paper's Figure 5 (edge list) configuration, with numeric
#: vertex ids (SNAP edge lists are integer ids; the paper types them String
#: only because its C++ parser reads raw tokens).
EDGE_INPUT_XML = """\
<input id="graph_edge" name="edge lists">
  <input_format>text</input_format>
  <element>
    <value name="vertex_a" type="long"/>
    <delimiter value="\\t"/>
    <value name="vertex_b" type="long"/>
    <delimiter value="\\n"/>
  </element>
</input>
"""
