"""Custom operator registration files (paper Figure 7).

Users can register their own computational operator as a new building block
"by inheriting the Operator class and implementing the functionality".  The
registration file tells the framework how to import and invoke it::

    <prog id="Sort" type="operator" name="MapReduce sort operator">
      <import module="com.mr.sort" class="Sort"/>
      <arguments>
        <param name="inputPath" type="String"/>
        <param name="outputPath" type="String"/>
        <param name="keyId" type="KeyId"/>
        <param name="ascending" type="boolean" default="true"/>
      </arguments>
    </prog>

The paper's Java dialect uses ``classpath``/``package`` attributes; the
Python port accepts ``module`` (dotted import path) directly and also maps
``package`` + ``class`` onto it for byte-compatibility with Figure 7 files.
"""

from __future__ import annotations

import importlib
import os
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import ConfigError, OperatorError

PathLike = Union[str, os.PathLike]


@dataclass(frozen=True)
class ArgumentSpec:
    """One declared argument of a registered operator."""

    name: str
    type: str = "String"
    default: Optional[str] = None
    required: bool = True


@dataclass
class OperatorRegistration:
    """A parsed ``<prog type="operator">`` document."""

    id: str
    name: str
    module: str
    class_name: str
    arguments: list[ArgumentSpec] = field(default_factory=list)

    def argument(self, name: str) -> ArgumentSpec:
        for a in self.arguments:
            if a.name == name:
                return a
        raise OperatorError(f"operator {self.id!r} declares no argument {name!r}")

    def load_class(self) -> type:
        """Import and return the operator class; validate its lineage."""
        try:
            mod = importlib.import_module(self.module)
        except ImportError as exc:
            raise OperatorError(
                f"cannot import module {self.module!r} for operator {self.id!r}: {exc}"
            ) from exc
        cls = getattr(mod, self.class_name, None)
        if cls is None:
            raise OperatorError(
                f"module {self.module!r} has no class {self.class_name!r}"
            )
        from repro.ops.base import Operator

        if not (isinstance(cls, type) and issubclass(cls, Operator)):
            raise OperatorError(
                f"{self.module}.{self.class_name} must inherit repro.ops.base.Operator"
            )
        return cls


def parse_operator_config(source: str) -> OperatorRegistration:
    """Parse one operator registration document (XML text)."""
    try:
        root = ET.fromstring(source)
    except ET.ParseError as exc:
        raise ConfigError(f"malformed operator configuration XML: {exc}") from exc
    if root.tag != "prog" or root.get("type") != "operator":
        raise ConfigError("expected a <prog type=\"operator\"> root element")
    prog_id = root.get("id")
    if not prog_id:
        raise ConfigError("<prog> requires an 'id' attribute")

    imp = root.find("import")
    if imp is None:
        raise ConfigError(f"operator {prog_id!r} declares no <import>")
    class_name = imp.get("class")
    if not class_name:
        raise ConfigError("<import> requires a 'class' attribute")
    module = imp.get("module") or imp.get("package")
    if not module:
        raise ConfigError("<import> requires a 'module' (or 'package') attribute")

    reg = OperatorRegistration(
        id=prog_id,
        name=root.get("name", prog_id),
        module=module,
        class_name=class_name,
    )
    args_node = root.find("arguments")
    if args_node is not None:
        for p in args_node.findall("param"):
            name = p.get("name")
            if not name:
                raise ConfigError("<param> requires a 'name' attribute")
            default = p.get("default")
            reg.arguments.append(
                ArgumentSpec(
                    name=name,
                    type=p.get("type", "String"),
                    default=default,
                    required=default is None,
                )
            )
    return reg


def load_operator_config(path: PathLike) -> OperatorRegistration:
    """Parse an operator registration file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_operator_config(fh.read())
