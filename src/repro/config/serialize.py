"""Serialization back to the configuration-file dialects.

Programmatic users can build :class:`~repro.formats.records.RecordSchema`
and :class:`~repro.config.workflow.WorkflowSpec` objects directly; these
writers emit the equivalent XML so configurations can be shared, versioned,
and re-parsed (round-trip tested).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.config.workflow import WorkflowSpec
from repro.formats.records import RecordSchema

_UNESCAPES = {"\t": "\\t", "\n": "\\n", "\r": "\\r", "\0": "\\0"}


def _escape_delim(d: str) -> str:
    return _UNESCAPES.get(d, d)


def _pretty(root: ET.Element) -> str:
    raw = ET.tostring(root, encoding="unicode")
    pretty = minidom.parseString(raw).toprettyxml(indent="  ")
    # drop the XML declaration and blank lines minidom adds
    lines = [ln for ln in pretty.splitlines() if ln.strip() and not ln.startswith("<?xml")]
    return "\n".join(lines) + "\n"


def schema_to_xml(schema: RecordSchema, name: str = "") -> str:
    """Emit a Figure 4/5-style ``<input>`` document for ``schema``."""
    root = ET.Element("input", {"id": schema.id})
    if name:
        root.set("name", name)
    fmt = ET.SubElement(root, "input_format")
    fmt.text = schema.input_format
    if schema.start_position:
        sp = ET.SubElement(root, "start_position")
        sp.text = str(schema.start_position)
    element = ET.SubElement(root, "element")
    delims = schema.effective_delimiters() if schema.input_format == "text" else ()
    for i, field in enumerate(schema.fields):
        ET.SubElement(element, "value", {"name": field.name, "type": field.type})
        if delims:
            ET.SubElement(element, "delimiter", {"value": _escape_delim(delims[i])})
    return _pretty(root)


def workflow_to_xml(spec: WorkflowSpec) -> str:
    """Emit a Figure 8/10-style ``<workflow>`` document for ``spec``."""
    root = ET.Element("workflow", {"id": spec.id, "name": spec.name})
    args = ET.SubElement(root, "arguments")
    for ps in spec.arguments.values():
        attrs = {"name": ps.name, "type": ps.type}
        if ps.value is not None:
            attrs["value"] = ps.value
        if ps.format is not None:
            attrs["format"] = ps.format
        ET.SubElement(args, "param", attrs)
    ops = ET.SubElement(root, "operators")
    for op in spec.operators:
        attrs = {"id": op.id, "operator": op.operator}
        attrs.update(op.attrs)
        op_node = ET.SubElement(ops, "operator", attrs)
        for ps in op.params.values():
            p_attrs = {"name": ps.name, "type": ps.type}
            if ps.value is not None:
                p_attrs["value"] = ps.value
            if ps.format is not None:
                p_attrs["format"] = ps.format
            ET.SubElement(op_node, "param", p_attrs)
        for addon in op.addons:
            a_attrs = {"operator": addon.operator}
            if addon.key is not None:
                a_attrs["key"] = addon.key
            if addon.attr is not None:
                a_attrs["attr"] = addon.attr
            if addon.value is not None:
                a_attrs["value"] = addon.value
            ET.SubElement(op_node, "addon", a_attrs)
    return _pretty(root)
