"""Workflow configuration files (paper Section III-B/C, Figures 8 and 10).

A workflow names its arguments and a sequence of operators; ``$name``
references pull values from the arguments, and ``$opid.param`` /
``$opid.$attr`` references pull intermediate values produced by earlier
operators (e.g. ``$sort.outputPath``, ``$group.$indegree``).
"""

from __future__ import annotations

import os
import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.analysis.locate import XMLLocationError, format_location, parse_located
from repro.errors import ConfigError, WorkflowError

PathLike = Union[str, os.PathLike]

_REF_RE = re.compile(r"\$([A-Za-z_][A-Za-z0-9_]*(?:\.\$?[A-Za-z_][A-Za-z0-9_]*)*)")

#: string literals accepted by boolean parameter coercion
BOOLEAN_TRUE_LITERALS = frozenset({"true", "1", "yes", "on"})
BOOLEAN_FALSE_LITERALS = frozenset({"false", "0", "no", "off"})


@dataclass(frozen=True)
class ParamSpec:
    """One ``<param>`` declaration."""

    name: str
    type: str = "String"
    value: Optional[str] = None
    format: Optional[str] = None
    #: 1-based source line of the declaration (when parsed from a file)
    line: Optional[int] = field(default=None, compare=False, repr=False)

    def coerce(self, raw: Any) -> Any:
        """Convert a resolved raw value to this parameter's declared type."""
        if raw is None:
            return None
        t = self.type.lower()
        try:
            if t in ("integer", "int", "long"):
                return int(raw)
            if t in ("float", "double"):
                return float(raw)
            if t in ("boolean", "bool"):
                if isinstance(raw, bool):
                    return raw
                text = str(raw).strip().lower()
                if text in BOOLEAN_TRUE_LITERALS:
                    return True
                if text in BOOLEAN_FALSE_LITERALS:
                    return False
                raise WorkflowError(
                    f"parameter {self.name!r}: {raw!r} is not a boolean literal; "
                    f"use one of {sorted(BOOLEAN_TRUE_LITERALS)} or "
                    f"{sorted(BOOLEAN_FALSE_LITERALS)}"
                )
            if t == "stringlist":
                if isinstance(raw, (list, tuple)):
                    return list(raw)
                return [s.strip() for s in str(raw).split(",")]
        except (TypeError, ValueError) as exc:
            raise WorkflowError(
                f"parameter {self.name!r}: cannot coerce {raw!r} to {self.type}"
            ) from exc
        return raw


@dataclass(frozen=True)
class AddOnSpec:
    """One ``<addon>`` attached to a basic operator (e.g. ``count``)."""

    operator: str
    key: Optional[str] = None
    attr: Optional[str] = None
    value: Optional[str] = None
    #: 1-based source line of the declaration (when parsed from a file)
    line: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass
class OperatorSpec:
    """One ``<operator>`` stage of the workflow."""

    id: str
    operator: str
    params: dict[str, ParamSpec] = field(default_factory=dict)
    addons: list[AddOnSpec] = field(default_factory=list)
    attrs: dict[str, str] = field(default_factory=dict)
    #: 1-based source line of the ``<operator>`` tag (when parsed from a file)
    line: Optional[int] = field(default=None, compare=False, repr=False)

    def param_value(self, name: str) -> Optional[str]:
        spec = self.params.get(name)
        return spec.value if spec is not None else None


@dataclass
class WorkflowSpec:
    """A parsed workflow: arguments plus an ordered operator sequence."""

    id: str
    name: str
    arguments: dict[str, ParamSpec] = field(default_factory=dict)
    operators: list[OperatorSpec] = field(default_factory=list)
    #: originating file (when parsed from disk) for diagnostics
    source_file: Optional[str] = field(default=None, compare=False, repr=False)

    def operator(self, op_id: str) -> OperatorSpec:
        for op in self.operators:
            if op.id == op_id:
                return op
        raise WorkflowError(f"workflow {self.id!r} has no operator {op_id!r}")


def _parse_param(node: ET.Element, line: Optional[int], where: str) -> ParamSpec:
    name = node.get("name")
    if not name:
        raise ConfigError(f"<param> requires a 'name' attribute [{where}]")
    return ParamSpec(
        name=name,
        type=node.get("type", "String"),
        value=node.get("value"),
        format=node.get("format"),
        line=line,
    )


def parse_workflow_config(source: str, filename: Optional[str] = None) -> WorkflowSpec:
    """Parse one ``<workflow>`` document (XML text).

    ``filename`` (when given) is recorded on the spec and woven into error
    messages as ``file:line`` so configuration mistakes are locatable.
    """
    try:
        tree = parse_located(source)
    except XMLLocationError as exc:
        raise ConfigError(
            f"malformed workflow configuration XML: {exc} "
            f"[{format_location(filename, exc.line)}]"
        ) from exc
    root = tree.root

    def where(node: ET.Element) -> str:
        return format_location(filename, tree.line(node))

    if root.tag != "workflow":
        raise ConfigError(
            f"expected <workflow> root element, found <{root.tag}> [{where(root)}]"
        )
    wf_id = root.get("id")
    if not wf_id:
        raise ConfigError(f"<workflow> requires an 'id' attribute [{where(root)}]")
    spec = WorkflowSpec(id=wf_id, name=root.get("name", wf_id), source_file=filename)

    args_node = root.find("arguments")
    if args_node is not None:
        for p in args_node.findall("param"):
            ps = _parse_param(p, tree.line(p), where(p))
            if ps.name in spec.arguments:
                raise ConfigError(
                    f"duplicate workflow argument {ps.name!r} [{where(p)}]"
                )
            spec.arguments[ps.name] = ps

    ops_node = root.find("operators")
    if ops_node is None or not list(ops_node):
        raise ConfigError(
            f"workflow {wf_id!r} declares no operators [{where(root)}]"
        )
    seen_ids: set[str] = set()
    for op_node in ops_node.findall("operator"):
        op_id = op_node.get("id")
        op_name = op_node.get("operator")
        if not op_id or not op_name:
            raise ConfigError(
                f"<operator> requires 'id' and 'operator' attributes [{where(op_node)}]"
            )
        if op_id in seen_ids:
            raise ConfigError(f"duplicate operator id {op_id!r} [{where(op_node)}]")
        seen_ids.add(op_id)
        op = OperatorSpec(
            id=op_id,
            operator=op_name,
            attrs={
                k: v for k, v in op_node.attrib.items() if k not in ("id", "operator")
            },
            line=tree.line(op_node),
        )
        for p in op_node.findall("param"):
            ps = _parse_param(p, tree.line(p), where(p))
            op.params[ps.name] = ps
        for a in op_node.findall("addon"):
            op.addons.append(
                AddOnSpec(
                    operator=a.get("operator", ""),
                    key=a.get("key"),
                    attr=a.get("attr"),
                    value=a.get("value"),
                    line=tree.line(a),
                )
            )
            if not op.addons[-1].operator:
                raise ConfigError(
                    f"<addon> in operator {op_id!r} requires 'operator' [{where(a)}]"
                )
        spec.operators.append(op)
    return spec


def load_workflow_config(path: PathLike) -> WorkflowSpec:
    """Parse a workflow configuration file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_workflow_config(fh.read(), filename=os.fspath(path))


class Bindings:
    """The ``$variable`` environment used while planning a workflow.

    Names resolve in two namespaces:

    * plain ``$name`` — workflow arguments (user-supplied or defaulted);
    * dotted ``$opid.param`` / ``$opid.$attr`` — values produced by earlier
      operators (output paths, add-on attributes).
    """

    def __init__(self, values: Optional[dict[str, Any]] = None) -> None:
        self._values: dict[str, Any] = dict(values or {})

    def bind(self, name: str, value: Any) -> None:
        self._values[name] = value

    def __contains__(self, name: str) -> bool:
        return self._normalize(name) in self._values

    @staticmethod
    def _normalize(ref: str) -> str:
        # "$group.$indegree" and "group.indegree" address the same binding
        return ref.replace("$", "")

    def lookup(self, ref: str) -> Any:
        key = self._normalize(ref)
        if key not in self._values:
            raise WorkflowError(
                f"unresolved reference ${key}; known: {sorted(self._values)}"
            )
        return self._values[key]

    def resolve(self, raw: Any) -> Any:
        """Substitute every ``$ref`` in ``raw``.

        When the whole string is a single reference the bound value is
        returned with its native type; otherwise references are substituted
        textually (for composite values like ``"{>=, $threshold}"``).
        """
        if raw is None or not isinstance(raw, str):
            return raw
        whole = _REF_RE.fullmatch(raw.strip())
        if whole:
            return self.lookup(whole.group(1))
        return _REF_RE.sub(lambda m: str(self.lookup(m.group(1))), raw)


def bind_arguments(
    spec: WorkflowSpec, user_args: Optional[dict[str, Any]] = None
) -> Bindings:
    """Build the initial environment from workflow arguments.

    ``user_args`` override config-file defaults; an argument without either
    is an error (the paper's runtime reads them from the command line).
    """
    user_args = dict(user_args or {})
    unknown = set(user_args) - set(spec.arguments)
    if unknown:
        raise WorkflowError(
            f"unknown workflow argument(s) {sorted(unknown)}; "
            f"declared: {sorted(spec.arguments)}"
        )
    env = Bindings()
    for name, ps in spec.arguments.items():
        if name in user_args:
            env.bind(name, ps.coerce(user_args[name]))
        elif ps.value is not None:
            env.bind(name, ps.coerce(ps.value))
        else:
            raise WorkflowError(f"workflow argument {name!r} has no value")
    return env
