"""Graceful process teardown shared by the CLI runtimes and the daemon.

Two consumers need the same discipline when SIGTERM/SIGINT arrives:

* :func:`repro.mpi.process_backend.run_mpi_processes` — its ``finally``
  block is what terminates the worker gang and unlinks the pooled
  ``/dev/shm`` segments.  Python's default SIGTERM disposition kills the
  interpreter *without* running ``finally`` blocks, so an interrupted CLI
  run used to leave segments behind for the next run's sweep to collect.
  Wrapping the run in :func:`graceful_teardown` converts the first
  SIGTERM/SIGINT into a :class:`ShutdownRequested` exception raised in the
  main thread, which unwinds through the cleanup path like any other error.
* the streaming partition daemon (:mod:`repro.serve`) — SIGTERM/SIGINT must
  drain in-flight requests, flush a final snapshot, and exit 0.  Its
  asyncio loop registers :func:`install_async_shutdown` instead, which
  invokes a drain callback exactly once.

Both paths share the "first signal is polite, second signal is immediate"
convention: a repeated signal restores the previous disposition and
re-raises it, so a wedged teardown can still be killed from the terminal.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Any, Callable, Iterator, Optional, Sequence

#: the signals a graceful teardown intercepts
DEFAULT_SIGNALS: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT)


class ShutdownRequested(BaseException):
    """Raised in the main thread when a teardown signal arrives.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
    ordinary ``except Exception`` recovery paths do not swallow it; callers
    that want to exit cleanly catch it explicitly and return 0.
    """

    def __init__(self, signum: int) -> None:
        self.signum = signum
        try:
            name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            name = str(signum)
        super().__init__(f"shutdown requested by {name}")


@contextlib.contextmanager
def graceful_teardown(
    signals: Sequence[int] = DEFAULT_SIGNALS,
) -> Iterator[Callable[[], bool]]:
    """Convert the first SIGTERM/SIGINT into :class:`ShutdownRequested`.

    Usage::

        with graceful_teardown() as requested:
            try:
                ...  # work whose ``finally`` blocks must run on SIGTERM
            finally:
                cleanup()

    The first intercepted signal raises :class:`ShutdownRequested` in the
    main thread, so the ``finally`` cleanup runs; a second signal restores
    the previous handler and re-raises itself (immediate teardown).  The
    yielded callable reports whether a shutdown was requested — cleanup
    code can branch on it without catching the exception early.

    Outside the main thread (or where handlers cannot be installed, e.g.
    under some embedded interpreters) this is a no-op context: signals keep
    their existing behavior and the callable always returns ``False``.
    """
    if threading.current_thread() is not threading.main_thread():
        yield lambda: False
        return
    fired = {"signum": None}
    previous: dict[int, Any] = {}

    def _restore() -> None:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover - teardown race
                pass

    def _handler(signum: int, frame: Any) -> None:
        if fired["signum"] is not None:
            # second signal: stop being polite
            _restore()
            signal.raise_signal(signum)
            return
        fired["signum"] = signum
        raise ShutdownRequested(signum)

    try:
        for signum in signals:
            previous[signum] = signal.signal(signum, _handler)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        _restore()
        yield lambda: False
        return
    try:
        yield lambda: fired["signum"] is not None
    finally:
        _restore()


def install_async_shutdown(
    loop: Any,
    callback: Callable[[int], Any],
    signals: Sequence[int] = DEFAULT_SIGNALS,
) -> Callable[[], None]:
    """Register ``callback(signum)`` on ``loop`` for the teardown signals.

    The callback fires at most once (repeated signals are ignored while the
    drain is already under way — asyncio teardown is idempotent, unlike the
    synchronous path's escalation).  Returns a remover that uninstalls the
    handlers; safe to call more than once.

    On platforms without ``loop.add_signal_handler`` (Windows) this falls
    back to a no-op remover and leaves signal behavior unchanged.
    """
    fired = {"done": False}
    installed: list[int] = []

    def _fire(signum: int) -> None:
        if fired["done"]:
            return
        fired["done"] = True
        callback(signum)

    for signum in signals:
        try:
            loop.add_signal_handler(signum, _fire, signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            continue
        installed.append(signum)

    def _remove() -> None:
        for signum in installed:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(signum)
        installed.clear()

    return _remove


__all__ = [
    "DEFAULT_SIGNALS",
    "ShutdownRequested",
    "graceful_teardown",
    "install_async_shutdown",
]
