"""Process-backed SPMD execution: ranks as OS processes, zero-copy exchange.

The default launcher runs ranks as threads — ideal for deterministic tests,
chaos engineering and virtual-time accounting, but serialized by the GIL.
This backend is the wall-clock path: each rank is a forked OS process, so
partitioner kernels genuinely execute in parallel, and it is a first-class
``backend="process"`` selectable through ``PaPar.run`` / ``partition_files``
/ ``python -m repro run --backend process`` (see ``docs/process-backend.md``).

Transport: pipes carry *headers only*.  Numpy payloads — ``KVBatch``
columns, partition arrays, ``Dataset`` records — travel through pooled
``multiprocessing.shared_memory`` segments via :mod:`repro.mpi.shm`; the
:class:`ShmFabric` endpoint overrides the fabric codec hooks so the
communicator, the MapReduce shuffle and both SPMD runtimes pick the
zero-copy lane up without changes.

Semantics match the thread backend with documented restrictions:

* ``Communicator.split``/``dup`` are unsupported (they need the shared
  rendezvous state only threads can share cheaply) and raise
  :class:`~repro.errors.MPIError`; the runtimes reject them earlier with a
  :class:`~repro.errors.ConfigError`;
* *simulated* fault injection / chaos schedules stay on the threaded
  backend — the deterministic substrate — and are rejected up front;
  recovery (checkpoint + retry) is supported via gang-restart, and real
  OS-level chaos is available through the
  :class:`~repro.mpi.supervisor.CrashAgent` harness.

The spawner does not block blindly on the result queue: a
:class:`~repro.mpi.supervisor.Supervisor` watches worker sentinels and a
heartbeat lane alongside it, so a dead or hung rank surfaces as a
classified :class:`~repro.errors.WorkerCrash` within seconds instead of
the full run timeout (see ``docs/process-backend.md``).

Each worker ships its :class:`~repro.mpi.fabric.TrafficStats` and segment
pool counters back in its exit message; the spawner merges them into
``MPIRun.extra["transport"]`` so per-rank traffic survives the process
boundary — on failure the queue is drained best-effort so the accounting
covers every rank that managed to report, and the raised error carries the
summary as ``papar_transport``.  Cleanup discipline: workers never unlink;
the spawner unlinks the union of the names ledger and a ``/dev/shm``
prefix scan after the workers are gone (terminate, then ``kill()`` for
anything that survives :data:`TERM_GRACE`), so neither a clean exit nor a
crash leaks segments or child processes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import secrets
from collections import deque
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.cluster.clock import VirtualClock
from repro.cluster.model import ClusterModel
from repro.errors import MPIError
from repro.lifecycle import graceful_teardown
from repro.mpi.comm import Communicator
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.fabric import Message, TrafficStats
from repro.mpi.launcher import MPIRun
from repro.mpi.shm import (
    ShmEnvelope,
    ShmPool,
    decode_payload,
    encode_payload,
    scan_segments,
    sweep_pending_closes,
    unlink_segments,
)
from repro.mpi.supervisor import (
    DEFAULT_HANG_TIMEOUT,
    CrashAgent,
    HeartbeatSender,
    Supervisor,
)

#: seconds a worker blocks on its inbox before declaring the run stuck
DEFAULT_COLLECT_TIMEOUT = 300.0
#: seconds a terminated worker gets to die before escalation to ``kill()``
TERM_GRACE = 10.0
#: seconds a killed worker gets to be reaped (SIGKILL cannot be ignored)
KILL_GRACE = 5.0
#: seconds to wait for sibling exit messages after the first worker error
ERROR_DRAIN_GRACE = 0.5


class ShmFabric:
    """Per-process fabric endpoint speaking the shared-memory wire format.

    One inbox queue per rank carries :class:`Message` headers whose payloads
    are :class:`~repro.mpi.shm.ShmEnvelope` headers; the bytes live in
    pooled segments owned by the sending rank's :class:`ShmPool`.  Receivers
    post segment names back to the owner's release queue when the last view
    dies, closing the recycle loop.
    """

    def __init__(
        self,
        rank: int,
        queues: Sequence[Any],
        release_queues: Sequence[Any],
        pool: ShmPool,
        collect_timeout: float = DEFAULT_COLLECT_TIMEOUT,
    ) -> None:
        self.size = len(queues)
        self._rank = rank
        self._queues = queues
        self._release_queues = release_queues
        self._pool = pool
        self._collect_timeout = collect_timeout
        self._buffer: deque[Message] = deque()
        self.stats = TrafficStats()

    # -- payload codec (the zero-copy lane) ----------------------------------

    def encode_object(self, obj: Any) -> tuple[Any, int]:
        """Encode an object payload into a shm envelope."""
        env = encode_payload(obj, self._pool)
        return env, env.nbytes

    def decode_object(self, payload: Any) -> Any:
        """Map an envelope's segment and rebuild the object (views, no copy)."""
        return decode_payload(payload, release_cb=self._release_cb(payload))

    def encode_buffer(self, arr: np.ndarray) -> tuple[Any, int]:
        """Encode a contiguous numpy buffer into a shm envelope."""
        env = encode_payload(arr, self._pool)
        return env, arr.nbytes

    def decode_buffer(self, payload: Any) -> np.ndarray:
        """Map an envelope back to a (read-only) numpy view."""
        return decode_payload(payload, release_cb=self._release_cb(payload))

    def _release_cb(self, env: ShmEnvelope) -> Optional[Callable[[], None]]:
        """Callback posting the segment back to its owner when views die."""
        if env.segment is None:
            return None
        queue = self._release_queues[env.owner]
        name = env.segment

        def _post() -> None:
            try:
                queue.put(name)
            except Exception:  # queue torn down at interpreter exit
                pass

        return _post

    # -- transport (same interface as the thread Fabric) ---------------------

    def deliver(self, dest: int, msg: Message) -> None:
        if not (0 <= dest < self.size):
            raise MPIError(f"destination rank {dest} out of range (size {self.size})")
        self.stats.record(msg.source, msg.nbytes)
        env = msg.payload
        if isinstance(env, ShmEnvelope):
            self.stats.shm_bytes += env.oob_bytes
            self.stats.pickle_bytes += env.fallback_bytes
            blob_len = len(env.blob) if env.blob is not None else 0
            self.stats.inline_bytes += blob_len - env.fallback_bytes
        self._queues[dest].put(msg)

    def _match_buffer(self, source: int, tag: int) -> Optional[Message]:
        for i, msg in enumerate(self._buffer):
            if source != ANY_SOURCE and msg.source != source:
                continue
            if tag != ANY_TAG and msg.tag != tag:
                continue
            del self._buffer[i]
            return msg
        return None

    def collect(self, dest: int, source: int, tag: int, timeout: Optional[float] = None) -> Message:
        if dest != self._rank:
            raise MPIError("a process fabric endpoint only receives for its own rank")
        msg = self._match_buffer(source, tag)
        if msg is not None:
            return msg
        import queue as queue_mod

        while True:
            try:
                msg = self._queues[self._rank].get(timeout=timeout or self._collect_timeout)
            except queue_mod.Empty as exc:
                raise MPIError(
                    f"rank {dest} timed out waiting for message (source={source}, tag={tag})"
                ) from exc
            if (source == ANY_SOURCE or msg.source == source) and (
                tag == ANY_TAG or msg.tag == tag
            ):
                return msg
            self._buffer.append(msg)

    def probe(self, dest: int, source: int, tag: int) -> Optional[Message]:
        # drain whatever is immediately available into the local buffer
        import queue as queue_mod

        while True:
            try:
                self._buffer.append(self._queues[self._rank].get_nowait())
            except queue_mod.Empty:
                break
        for msg in self._buffer:
            if source != ANY_SOURCE and msg.source != source:
                continue
            if tag != ANY_TAG and msg.tag != tag:
                continue
            return msg
        return None

    def coordinate(self, key: Any, rank: int, value: Any, size: int):
        raise MPIError(
            "split()/dup() are not supported on the process backend; "
            "use backend='mpi' for sub-communicator workflows"
        )

    def abort(self, exc: BaseException) -> None:  # pragma: no cover - parent kills us
        raise MPIError(f"aborted: {exc!r}")


def _drain(queue: Any) -> list[Any]:
    """Pull everything immediately available off a multiprocessing queue."""
    import queue as queue_mod

    items = []
    while True:
        try:
            items.append(queue.get_nowait())
        except queue_mod.Empty:
            return items
        except Exception:  # closed queue, or a killed writer tore a message
            return items


def _process_worker(
    rank: int,
    queues: Sequence[Any],
    release_queues: Sequence[Any],
    names_queue: Any,
    result_queue: Any,
    heartbeat_queue: Any,
    cluster: Optional[ClusterModel],
    prefix: str,
    collect_timeout: float,
    crash_agent: Optional[CrashAgent],
    fn: Callable[..., Any],
    args: Sequence[Any],
    kwargs: dict[str, Any],
) -> None:
    """Entry point of one rank process (forked: fn/args arrive by COW memory)."""
    pool = ShmPool(prefix, rank, release_queue=release_queues[rank], names_queue=names_queue)
    fabric = ShmFabric(rank, queues, release_queues, pool, collect_timeout)
    heartbeat = HeartbeatSender(rank, heartbeat_queue)
    heartbeat.start()
    if crash_agent is not None:
        crash_agent.bind_heartbeat(heartbeat)
    try:
        comm = Communicator(
            rank, fabric, cluster=cluster, clock=VirtualClock(), injector=crash_agent
        )
        result = fn(comm, *args, **kwargs)
        envelope = encode_payload(result, pool)
        result_queue.put(
            {
                "status": "ok",
                "rank": rank,
                "payload": envelope,
                "clock": comm.clock.now,
                "traffic": fabric.stats.as_dict(),
                "pool": pool.stats.as_dict(),
            }
        )
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        exit_msg = {
            "status": "error",
            "rank": rank,
            "payload": exc,
            "clock": 0.0,
            "traffic": fabric.stats.as_dict(),
            "pool": pool.stats.as_dict(),
        }
        try:
            result_queue.put(exit_msg)
        except Exception:
            exit_msg["payload"] = MPIError(repr(exc))
            result_queue.put(exit_msg)
    finally:
        heartbeat.stop()
        sweep_pending_closes()
        pool.close()


def _shutdown_gang(procs: Sequence[Any]) -> None:
    """Tear the gang down: terminate, join, escalate to ``kill()``.

    A worker that ignores SIGTERM (stuck in a signal-blind C call, or a
    test that installed ``SIG_IGN``) used to be leaked past the old
    ``join(10.0)``; now it gets :data:`TERM_GRACE` seconds to die politely
    before SIGKILL, which cannot be ignored.
    """
    import time as time_mod

    for p in procs:
        p.terminate()
    deadline = time_mod.monotonic() + TERM_GRACE
    for p in procs:
        p.join(timeout=max(0.0, deadline - time_mod.monotonic()))
    survivors = [p for p in procs if p.is_alive()]
    for p in survivors:
        p.kill()
    for p in survivors:
        p.join(timeout=KILL_GRACE)


def run_mpi_processes(
    fn: Callable[..., Any],
    size: int,
    *,
    cluster: Optional[ClusterModel] = None,
    args: Sequence[Any] = (),
    kwargs: Optional[dict[str, Any]] = None,
    timeout: float = 600.0,
    collect_timeout: float = DEFAULT_COLLECT_TIMEOUT,
    hang_timeout: Optional[float] = DEFAULT_HANG_TIMEOUT,
    crash_agent: Optional[CrashAgent] = None,
) -> MPIRun:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` rank *processes*.

    Returns an :class:`~repro.mpi.launcher.MPIRun` whose
    ``extra["transport"]`` carries the merged per-rank traffic and segment
    pool counters (``shm_bytes``, ``pickle_bytes``, segments created /
    reused / unlinked) — the numbers the driver surfaces in
    ``PartitionResult.extra["perf"]["transport"]``.

    Collection is supervised: a rank that dies without reporting raises a
    classified :class:`~repro.errors.WorkerCrash` within seconds, and a
    live rank whose heartbeat goes quiet for ``hang_timeout`` seconds is
    declared hung (``hang_timeout=None`` disables hang detection).  On any
    failure the raised exception carries the best-effort transport summary
    as ``papar_transport``.

    ``crash_agent`` (or the ``PAPAR_CRASH_AGENT`` environment variable)
    arms the real-fault chaos harness; see
    :class:`~repro.mpi.supervisor.CrashAgent`.
    """
    if size < 1:
        raise MPIError(f"size must be >= 1, got {size!r}")
    if cluster is not None and cluster.size != size:
        raise MPIError(
            f"cluster model provides {cluster.size} ranks but run was asked for {size}"
        )
    if crash_agent is None:
        crash_agent = CrashAgent.from_env()
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    prefix = f"pp{os.getpid():x}{secrets.token_hex(2)}"
    queues = [ctx.Queue() for _ in range(size)]
    release_queues = [ctx.Queue() for _ in range(size)]
    names_queue = ctx.Queue()
    result_queue = ctx.Queue()
    heartbeat_queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_process_worker,
            args=(
                rank, queues, release_queues, names_queue, result_queue,
                heartbeat_queue, cluster, prefix, collect_timeout, crash_agent,
                fn, tuple(args), dict(kwargs or {}),
            ),
            daemon=True,
        )
        for rank in range(size)
    ]
    results: list[Any] = [None] * size
    clocks = [0.0] * size
    traffic: dict[int, dict[str, Any]] = {}
    pools: dict[int, dict[str, int]] = {}
    seen: set[int] = set()
    first_error: Optional[BaseException] = None
    unlinked = 0
    import queue as queue_mod
    import time as time_mod

    def _absorb(exit_msg: dict[str, Any], decode: bool) -> None:
        """Fold one exit message into the accounting (and results if asked)."""
        nonlocal first_error
        rank = exit_msg["rank"]
        if rank in seen:
            return
        seen.add(rank)
        traffic[rank] = exit_msg["traffic"]
        pools[rank] = exit_msg["pool"]
        clocks[rank] = exit_msg["clock"]
        if exit_msg["status"] == "error":
            first_error = first_error or exit_msg["payload"]
        elif decode:
            # materialize the result out of shared memory before cleanup
            results[rank] = decode_payload(exit_msg["payload"], copy=True)

    # SIGTERM's default disposition skips ``finally`` blocks entirely, which
    # used to leak the gang and its /dev/shm segments when a CLI run was
    # interrupted; graceful_teardown turns the first signal into an exception
    # that unwinds through the teardown below (second signal kills for real)
    with graceful_teardown():
        for p in procs:
            p.start()
        supervisor = Supervisor(
            procs, result_queue, heartbeat_queue,
            timeout=timeout, hang_timeout=hang_timeout,
        )
        try:
            try:
                for exit_msg in supervisor.exits():
                    _absorb(exit_msg, decode=True)
                    if exit_msg["status"] == "error":
                        break
            except MPIError as exc:  # WorkerCrash, hang, or global timeout
                if first_error is None:
                    first_error = exc
            if first_error is not None:
                # drain sibling exits best-effort so the transport accounting
                # and segment ledgers are complete even on failure
                drain_deadline = time_mod.monotonic() + ERROR_DRAIN_GRACE
                while len(seen) < size and time_mod.monotonic() < drain_deadline:
                    try:
                        _absorb(result_queue.get(timeout=0.05), decode=False)
                    except (queue_mod.Empty, OSError, ValueError):
                        pass
        finally:
            _shutdown_gang(procs)
            for exit_msg in _drain(result_queue):
                try:
                    _absorb(exit_msg, decode=False)
                except Exception:  # killed writer can tear a message mid-pickle
                    break
            # unlink the union of the ledger and a /dev/shm prefix scan: a
            # crashed worker's segments show up in at least one of the two
            names = set(_drain(names_queue)) | set(scan_segments(prefix))
            unlinked = unlink_segments(names)
            sweep_pending_closes()
    if first_error is not None:
        try:
            first_error.papar_transport = _merge_transport(prefix, traffic, pools, unlinked)
        except Exception:
            pass
        raise first_error
    messages = sum(t["messages"] for t in traffic.values())
    nbytes = sum(t["bytes"] for t in traffic.values())
    run = MPIRun(results=results, clocks=clocks, bytes_moved=nbytes, messages=messages)
    run.extra["transport"] = _merge_transport(prefix, traffic, pools, unlinked)
    return run


def _merge_transport(
    prefix: str,
    traffic: dict[int, dict[str, Any]],
    pools: dict[int, dict[str, int]],
    unlinked: int,
) -> dict[str, Any]:
    """Fold per-rank traffic/pool counters into the driver-facing summary."""
    summary: dict[str, Any] = {
        "kind": "shm",
        "shm_prefix": prefix,
        "shm_bytes": sum(t["shm_bytes"] for t in traffic.values()),
        "pickle_bytes": sum(t["pickle_bytes"] for t in traffic.values()),
        "inline_bytes": sum(t["inline_bytes"] for t in traffic.values()),
        "segments_created": sum(p["created"] for p in pools.values()),
        "segments_reused": sum(p["reused"] for p in pools.values()),
        "segments_released": sum(p["released"] for p in pools.values()),
        "segments_unlinked": unlinked,
        "shm_bytes_allocated": sum(p["bytes_allocated"] for p in pools.values()),
        "per_rank": {
            rank: {
                "messages": t["messages"],
                "bytes": t["bytes"],
                "shm_bytes": t["shm_bytes"],
                "pickle_bytes": t["pickle_bytes"],
                "inline_bytes": t["inline_bytes"],
            }
            for rank, t in sorted(traffic.items())
        },
    }
    return summary
