"""Process-backed SPMD execution: true parallelism for wall-clock runs.

The default launcher runs ranks as threads — ideal for deterministic tests
and virtual-time accounting, but serialized by the GIL.  This backend runs
each rank as an OS process connected by pipes, so partitioner kernels
actually execute in parallel; the wall-clock scalability benchmark uses it.

Semantics match the thread backend with two documented restrictions:

* the rank function, its arguments and all messages must be picklable;
* ``Communicator.split``/``dup`` are unsupported (they need the shared
  rendezvous state only threads can share cheaply).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from collections import deque
from typing import Any, Callable, Optional, Sequence

from repro.cluster.clock import VirtualClock
from repro.cluster.model import ClusterModel
from repro.errors import MPIError
from repro.mpi.comm import Communicator
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.fabric import Message, TrafficStats
from repro.mpi.launcher import MPIRun


class ProcessFabric:
    """Per-process fabric endpoint: one inbox queue, peers' queues to send."""

    def __init__(self, rank: int, queues: Sequence[Any]) -> None:
        self.size = len(queues)
        self._rank = rank
        self._queues = queues
        self._buffer: deque[Message] = deque()
        self.stats = TrafficStats()

    # -- transport (same interface as the thread Fabric) ---------------------

    def deliver(self, dest: int, msg: Message) -> None:
        if not (0 <= dest < self.size):
            raise MPIError(f"destination rank {dest} out of range (size {self.size})")
        self.stats.record(msg.source, msg.nbytes)
        self._queues[dest].put(msg)

    def _match_buffer(self, source: int, tag: int) -> Optional[Message]:
        for i, msg in enumerate(self._buffer):
            if source != ANY_SOURCE and msg.source != source:
                continue
            if tag != ANY_TAG and msg.tag != tag:
                continue
            del self._buffer[i]
            return msg
        return None

    def collect(self, dest: int, source: int, tag: int, timeout: Optional[float] = None) -> Message:
        if dest != self._rank:
            raise MPIError("a process fabric endpoint only receives for its own rank")
        msg = self._match_buffer(source, tag)
        if msg is not None:
            return msg
        import queue as queue_mod

        while True:
            try:
                msg = self._queues[self._rank].get(timeout=timeout or 300.0)
            except queue_mod.Empty as exc:
                raise MPIError(
                    f"rank {dest} timed out waiting for message (source={source}, tag={tag})"
                ) from exc
            if (source == ANY_SOURCE or msg.source == source) and (
                tag == ANY_TAG or msg.tag == tag
            ):
                return msg
            self._buffer.append(msg)

    def probe(self, dest: int, source: int, tag: int) -> Optional[Message]:
        # drain whatever is immediately available into the local buffer
        import queue as queue_mod

        while True:
            try:
                self._buffer.append(self._queues[self._rank].get_nowait())
            except queue_mod.Empty:
                break
        for msg in self._buffer:
            if source != ANY_SOURCE and msg.source != source:
                continue
            if tag != ANY_TAG and msg.tag != tag:
                continue
            return msg
        return None

    def coordinate(self, key: Any, rank: int, value: Any, size: int):
        raise MPIError("split()/dup() are not supported on the process backend")

    def abort(self, exc: BaseException) -> None:  # pragma: no cover - parent kills us
        raise MPIError(f"aborted: {exc!r}")


def _process_worker(
    rank: int,
    queues: Sequence[Any],
    result_queue: Any,
    cluster: Optional[ClusterModel],
    fn_blob: bytes,
    args_blob: bytes,
) -> None:
    """Entry point of one rank process."""
    try:
        fn = pickle.loads(fn_blob)
        args, kwargs = pickle.loads(args_blob)
        fabric = ProcessFabric(rank, queues)
        comm = Communicator(rank, fabric, cluster=cluster, clock=VirtualClock())
        result = fn(comm, *args, **kwargs)
        result_queue.put(
            ("ok", rank, result, comm.clock.now, fabric.stats.messages, fabric.stats.bytes)
        )
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        try:
            result_queue.put(("error", rank, exc, 0.0, 0, 0))
        except Exception:
            result_queue.put(("error", rank, MPIError(repr(exc)), 0.0, 0, 0))


def run_mpi_processes(
    fn: Callable[..., Any],
    size: int,
    *,
    cluster: Optional[ClusterModel] = None,
    args: Sequence[Any] = (),
    kwargs: Optional[dict[str, Any]] = None,
    timeout: float = 600.0,
) -> MPIRun:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` rank *processes*."""
    if size < 1:
        raise MPIError(f"size must be >= 1, got {size!r}")
    if cluster is not None and cluster.size != size:
        raise MPIError(
            f"cluster model provides {cluster.size} ranks but run was asked for {size}"
        )
    ctx = mp.get_context("fork")
    queues = [ctx.Queue() for _ in range(size)]
    result_queue = ctx.Queue()
    fn_blob = pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
    args_blob = pickle.dumps((tuple(args), dict(kwargs or {})), protocol=pickle.HIGHEST_PROTOCOL)
    procs = [
        ctx.Process(
            target=_process_worker,
            args=(rank, queues, result_queue, cluster, fn_blob, args_blob),
            daemon=True,
        )
        for rank in range(size)
    ]
    for p in procs:
        p.start()

    results: list[Any] = [None] * size
    clocks = [0.0] * size
    messages = 0
    nbytes = 0
    first_error: Optional[BaseException] = None
    import queue as queue_mod

    try:
        for _ in range(size):
            try:
                status, rank, payload, clock, msgs, b = result_queue.get(timeout=timeout)
            except queue_mod.Empty as exc:
                raise MPIError(f"rank processes did not finish within {timeout}s") from exc
            if status == "error":
                first_error = first_error or payload
            else:
                results[rank] = payload
                clocks[rank] = clock
                messages += msgs
                nbytes += b
            if first_error is not None:
                break
    finally:
        for p in procs:
            p.terminate()
        for p in procs:
            p.join(timeout=10.0)
    if first_error is not None:
        raise first_error
    return MPIRun(results=results, clocks=clocks, bytes_moved=nbytes, messages=messages)
