"""In-process message fabric connecting the rank threads.

One :class:`Fabric` backs one communicator.  Sends are *eager*: the payload
is deposited directly into the destination mailbox, so a sender never blocks
(matching the buffered semantics mpi4py programs rely on for small and
medium messages).  Receives block on a per-mailbox condition variable with
MPI matching rules: ``(source, tag)`` with :data:`~repro.mpi.constants.ANY_SOURCE`
/ :data:`~repro.mpi.constants.ANY_TAG` wildcards, FIFO (non-overtaking) per
source.

If any rank dies with an exception the launcher calls :meth:`Fabric.abort`,
which wakes every blocked receiver with :class:`~repro.errors.MPIError`
instead of deadlocking the test suite.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import MPIError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG


@dataclass
class Message:
    """One in-flight message."""

    source: int
    tag: int
    payload: Any
    nbytes: int
    #: sender's virtual send timestamp (0.0 when no cluster model is attached)
    timestamp: float = 0.0
    #: True for the buffer-protocol ("capitalized") path
    is_buffer: bool = False


class _Mailbox:
    """Unmatched messages destined for one rank, plus its wakeup condvar."""

    __slots__ = ("lock", "ready", "messages")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.ready = threading.Condition(self.lock)
        self.messages: deque[Message] = deque()


@dataclass
class TrafficStats:
    """Aggregate traffic counters for one fabric (thread-safe via fabric lock)."""

    messages: int = 0
    bytes: int = 0
    by_rank_bytes: dict[int, int] = field(default_factory=dict)

    def record(self, source: int, nbytes: int) -> None:
        self.messages += 1
        self.bytes += nbytes
        self.by_rank_bytes[source] = self.by_rank_bytes.get(source, 0) + nbytes


class Fabric:
    """Message transport shared by all ranks of one communicator."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise MPIError(f"communicator size must be >= 1, got {size!r}")
        self.size = size
        self._mailboxes = [_Mailbox() for _ in range(size)]
        self._aborted: Optional[BaseException] = None
        self._stats_lock = threading.Lock()
        self.stats = TrafficStats()
        # shared state for split()/collective coordination keyed by caller id
        self._coord_lock = threading.Lock()
        self._coord: dict[Any, Any] = {}
        self._uid = itertools.count()

    # -- transport ---------------------------------------------------------

    def deliver(self, dest: int, msg: Message) -> None:
        """Deposit ``msg`` in ``dest``'s mailbox and wake any waiting receiver."""
        self._check_alive()
        if not (0 <= dest < self.size):
            raise MPIError(f"destination rank {dest} out of range (size {self.size})")
        with self._stats_lock:
            self.stats.record(msg.source, msg.nbytes)
        box = self._mailboxes[dest]
        with box.lock:
            box.messages.append(msg)
            box.ready.notify_all()

    def _match(self, box: _Mailbox, source: int, tag: int) -> Optional[Message]:
        """First message matching ``(source, tag)``; FIFO per source rank."""
        for i, msg in enumerate(box.messages):
            if source != ANY_SOURCE and msg.source != source:
                continue
            if tag != ANY_TAG and msg.tag != tag:
                continue
            del box.messages[i]
            return msg
        return None

    def collect(self, dest: int, source: int, tag: int, timeout: Optional[float] = None) -> Message:
        """Block until a matching message arrives for rank ``dest``."""
        box = self._mailboxes[dest]
        with box.lock:
            while True:
                self._check_alive()
                msg = self._match(box, source, tag)
                if msg is not None:
                    return msg
                if not box.ready.wait(timeout=timeout or 60.0):
                    if timeout is not None:
                        raise MPIError(
                            f"rank {dest} timed out waiting for message "
                            f"(source={source}, tag={tag})"
                        )
                    # default long wait expired: keep waiting but re-check abort
                    self._check_alive()

    def probe(self, dest: int, source: int, tag: int) -> Optional[Message]:
        """Non-destructively look for a matching message (non-blocking)."""
        box = self._mailboxes[dest]
        with box.lock:
            self._check_alive()
            for msg in box.messages:
                if source != ANY_SOURCE and msg.source != source:
                    continue
                if tag != ANY_TAG and msg.tag != tag:
                    continue
                return msg
            return None

    # -- failure handling ----------------------------------------------------

    def abort(self, exc: BaseException) -> None:
        """Mark the fabric dead and wake all blocked receivers."""
        self._aborted = exc
        for box in self._mailboxes:
            with box.lock:
                box.ready.notify_all()

    def _check_alive(self) -> None:
        if self._aborted is not None:
            raise MPIError(f"communicator aborted: {self._aborted!r}") from self._aborted

    # -- collective coordination ----------------------------------------------

    def coordinate(self, key: Any, rank: int, value: Any, size: int) -> dict[int, Any]:
        """Rendezvous: all ``size`` participants deposit ``value`` under ``key``.

        Returns the full ``{rank: value}`` map once everyone has arrived.
        Used to implement ``split`` without a chicken-and-egg communicator.
        """
        with self._coord_lock:
            entry = self._coord.setdefault(
                key,
                {"values": {}, "left": 0, "cv": threading.Condition(self._coord_lock)},
            )
            entry["values"][rank] = value
            if len(entry["values"]) == size:
                entry["cv"].notify_all()
            else:
                while len(entry["values"]) < size:
                    if not entry["cv"].wait(timeout=60.0):
                        self._check_alive()
            values = entry["values"]
            entry["left"] += 1
            if entry["left"] == size:
                del self._coord[key]
            return values

    def fresh_uid(self) -> int:
        """A fabric-unique id (used to key coordination rounds)."""
        return next(self._uid)
