"""In-process message fabric connecting the rank threads.

One :class:`Fabric` backs one communicator.  Sends are *eager*: the payload
is deposited directly into the destination mailbox, so a sender never blocks
(matching the buffered semantics mpi4py programs rely on for small and
medium messages).  Receives block on a per-mailbox condition variable with
MPI matching rules: ``(source, tag)`` with :data:`~repro.mpi.constants.ANY_SOURCE`
/ :data:`~repro.mpi.constants.ANY_TAG` wildcards, FIFO (non-overtaking) per
source.

If any rank dies with an exception the launcher calls :meth:`Fabric.abort`,
which wakes every blocked receiver *and* every ``split``/collective
participant parked in :meth:`Fabric.coordinate` with
:class:`~repro.errors.MPIError` instead of deadlocking the test suite.

A receiver that waits longer than ``deadlock_grace`` seconds without the
fabric being aborted raises :class:`~repro.errors.DeadlockError` carrying
every blocked rank's pending ``(source, tag)`` state — the diagnosis layer
for lost messages (see :mod:`repro.fault`).

Fault injection: when a :class:`~repro.fault.injector.FaultInjector` is
attached, :meth:`deliver` routes each message through it (drop / duplicate /
delay / corrupt), duplicate copies are suppressed by per-destination
sequence-number dedup, and :meth:`collect` verifies the transport checksum
of any message the injector touched.  Without an injector all of that is a
single ``is None`` check — the fault-free hot path is unchanged.
"""

from __future__ import annotations

import itertools
import pickle
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import CorruptMessageError, DeadlockError, MPIError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG

#: default seconds a blocked receiver waits before declaring a deadlock
DEFAULT_DEADLOCK_GRACE = 60.0


@dataclass
class Message:
    """One in-flight message."""

    source: int
    tag: int
    payload: Any
    nbytes: int
    #: sender's virtual send timestamp (0.0 when no cluster model is attached)
    timestamp: float = 0.0
    #: True for the buffer-protocol ("capitalized") path
    is_buffer: bool = False
    #: transport sequence number (assigned only under fault injection)
    seq: int = -1
    #: transport checksum of the *original* payload (fault injection only)
    checksum: Optional[int] = None


class _Mailbox:
    """Unmatched messages destined for one rank, plus its wakeup condvar."""

    __slots__ = ("lock", "ready", "messages", "seen_seqs")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.ready = threading.Condition(self.lock)
        self.messages: deque[Message] = deque()
        #: sequence numbers already accepted (duplicate suppression)
        self.seen_seqs: set[int] = set()


@dataclass
class TrafficStats:
    """Aggregate traffic counters for one fabric (thread-safe via fabric lock).

    ``shm_bytes`` / ``pickle_bytes`` / ``inline_bytes`` split the traffic by
    transport lane.  On the thread fabric everything is in-process, so the
    lane counters stay zero; the process backend's shared-memory fabric
    fills them in (``shm_bytes`` = array bytes mapped out-of-band,
    ``pickle_bytes`` = array bytes that *fell back* to a pickle blob,
    ``inline_bytes`` = non-array object skeletons riding the pipe).
    """

    messages: int = 0
    bytes: int = 0
    by_rank_bytes: dict[int, int] = field(default_factory=dict)
    shm_bytes: int = 0
    pickle_bytes: int = 0
    inline_bytes: int = 0

    def record(self, source: int, nbytes: int) -> None:
        self.messages += 1
        self.bytes += nbytes
        self.by_rank_bytes[source] = self.by_rank_bytes.get(source, 0) + nbytes

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view (exit messages, ``extra["perf"]`` aggregation)."""
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "by_rank_bytes": dict(self.by_rank_bytes),
            "shm_bytes": self.shm_bytes,
            "pickle_bytes": self.pickle_bytes,
            "inline_bytes": self.inline_bytes,
        }


class Fabric:
    """Message transport shared by all ranks of one communicator."""

    def __init__(
        self,
        size: int,
        deadlock_grace: float = DEFAULT_DEADLOCK_GRACE,
        injector: Optional[Any] = None,
    ) -> None:
        if size < 1:
            raise MPIError(f"communicator size must be >= 1, got {size!r}")
        if deadlock_grace <= 0:
            raise MPIError(f"deadlock_grace must be > 0 seconds, got {deadlock_grace!r}")
        self.size = size
        #: seconds a blocked wait may last before raising :class:`DeadlockError`
        self.deadlock_grace = deadlock_grace
        #: optional :class:`~repro.fault.injector.FaultInjector`
        self.injector = injector
        self._mailboxes = [_Mailbox() for _ in range(size)]
        self._aborted: Optional[BaseException] = None
        self._stats_lock = threading.Lock()
        self.stats = TrafficStats()
        # shared state for split()/collective coordination keyed by caller id
        self._coord_lock = threading.Lock()
        self._coord: dict[Any, Any] = {}
        self._uid = itertools.count()
        #: rank -> (source, tag) while that rank is blocked in :meth:`collect`
        self._waiting: dict[int, tuple[int, int]] = {}

    # -- transport ---------------------------------------------------------

    def deliver(self, dest: int, msg: Message) -> None:
        """Deposit ``msg`` in ``dest``'s mailbox and wake any waiting receiver."""
        self._check_alive()
        if not (0 <= dest < self.size):
            raise MPIError(f"destination rank {dest} out of range (size {self.size})")
        if self.injector is None:
            with self._stats_lock:
                self.stats.record(msg.source, msg.nbytes)
            box = self._mailboxes[dest]
            with box.lock:
                box.messages.append(msg)
                box.ready.notify_all()
            return
        # fault-injected path: the injector decides the copies that reach the
        # wire; per-destination sequence dedup suppresses duplicated copies
        copies = self.injector.on_deliver(msg.source, dest, msg)
        box = self._mailboxes[dest]
        for copy in copies:
            with box.lock:
                if copy.seq in box.seen_seqs:
                    self.injector.count_suppressed_duplicate()
                    continue
                box.seen_seqs.add(copy.seq)
                box.messages.append(copy)
                box.ready.notify_all()
            with self._stats_lock:
                self.stats.record(copy.source, copy.nbytes)

    def _match(self, box: _Mailbox, source: int, tag: int) -> Optional[Message]:
        """First message matching ``(source, tag)``; FIFO per source rank."""
        for i, msg in enumerate(box.messages):
            if source != ANY_SOURCE and msg.source != source:
                continue
            if tag != ANY_TAG and msg.tag != tag:
                continue
            del box.messages[i]
            return msg
        return None

    @staticmethod
    def _verify(msg: Message) -> Message:
        """Check the transport checksum of an injector-touched message."""
        if msg.checksum is not None:
            from repro.fault.injector import checksum_of

            if checksum_of(msg.payload) != msg.checksum:
                raise CorruptMessageError(
                    f"message from rank {msg.source} (tag {msg.tag}, "
                    f"{msg.nbytes} B) failed its transport checksum"
                )
        return msg

    def collect(self, dest: int, source: int, tag: int, timeout: Optional[float] = None) -> Message:
        """Block until a matching message arrives for rank ``dest``.

        ``timeout`` bounds the wait explicitly (raising a plain
        :class:`MPIError`); without it the fabric's ``deadlock_grace``
        applies and expiry raises :class:`DeadlockError` with the blocked
        ranks' pending state.
        """
        box = self._mailboxes[dest]
        self._waiting[dest] = (source, tag)
        try:
            with box.lock:
                while True:
                    self._check_alive()
                    msg = self._match(box, source, tag)
                    if msg is not None:
                        return self._verify(msg)
                    if not box.ready.wait(timeout=timeout or self.deadlock_grace):
                        self._check_alive()
                        if timeout is not None:
                            raise MPIError(
                                f"rank {dest} timed out waiting for message "
                                f"(source={source}, tag={tag})"
                            )
                        pending = dict(self._waiting)
                        raise DeadlockError(
                            f"rank {dest} made no progress for "
                            f"{self.deadlock_grace:.1f}s waiting for a message "
                            f"(source={source}, tag={tag}); blocked ranks: "
                            f"{pending}",
                            rank=dest,
                            pending=pending,
                        )
        finally:
            self._waiting.pop(dest, None)

    def probe(self, dest: int, source: int, tag: int) -> Optional[Message]:
        """Non-destructively look for a matching message (non-blocking)."""
        box = self._mailboxes[dest]
        with box.lock:
            self._check_alive()
            for msg in box.messages:
                if source != ANY_SOURCE and msg.source != source:
                    continue
                if tag != ANY_TAG and msg.tag != tag:
                    continue
                return msg
            return None

    # -- payload codec -------------------------------------------------------
    #
    # The communicator never serializes payloads itself: it asks its fabric,
    # so a transport can choose the wire format.  The thread fabric pickles
    # (receivers get private copies, matching mpi4py's lowercase semantics)
    # and copies buffers; the process backend's shared-memory fabric overrides
    # these four hooks to move array bytes through pooled shm segments.

    def encode_object(self, obj: Any) -> tuple[Any, int]:
        """Serialize an object payload; returns ``(payload, nbytes)``."""
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return payload, len(payload)

    def decode_object(self, payload: Any) -> Any:
        """Rebuild an object produced by :meth:`encode_object`."""
        return pickle.loads(payload)

    def encode_buffer(self, arr: np.ndarray) -> tuple[Any, int]:
        """Package a contiguous numpy buffer; returns ``(payload, nbytes)``.

        The copy detaches the in-flight message from the sender's memory so
        a sender reusing its buffer cannot corrupt an undelivered message.
        """
        return arr.copy(), arr.nbytes

    def decode_buffer(self, payload: Any) -> np.ndarray:
        """Rebuild the numpy buffer produced by :meth:`encode_buffer`."""
        return payload

    # -- failure handling ----------------------------------------------------

    def abort(self, exc: BaseException) -> None:
        """Mark the fabric dead and wake all blocked receivers *and* waiters
        parked in :meth:`coordinate` (split/collective rendezvous).

        The first abort wins: follow-on "communicator aborted" errors from
        sibling ranks never mask the root cause.
        """
        if self._aborted is None:
            self._aborted = exc
        for box in self._mailboxes:
            with box.lock:
                box.ready.notify_all()
        with self._coord_lock:
            for entry in self._coord.values():
                entry["cv"].notify_all()

    def _check_alive(self) -> None:
        if self._aborted is not None:
            raise MPIError(f"communicator aborted: {self._aborted!r}") from self._aborted

    @property
    def aborted(self) -> Optional[BaseException]:
        """The exception the fabric was aborted with, if any."""
        return self._aborted

    def pending_waits(self) -> dict[int, tuple[int, int]]:
        """Snapshot of ranks currently blocked in :meth:`collect`."""
        return dict(self._waiting)

    # -- collective coordination ----------------------------------------------

    def coordinate(self, key: Any, rank: int, value: Any, size: int) -> dict[int, Any]:
        """Rendezvous: all ``size`` participants deposit ``value`` under ``key``.

        Returns the full ``{rank: value}`` map once everyone has arrived.
        Used to implement ``split`` without a chicken-and-egg communicator.
        An aborted fabric wakes the waiters immediately; a rendezvous stuck
        longer than ``deadlock_grace`` raises :class:`DeadlockError` naming
        the ranks that did arrive.
        """
        with self._coord_lock:
            # a rank arriving after the fabric died would never be notified:
            # fail fast instead of sleeping out the grace
            self._check_alive()
            entry = self._coord.setdefault(
                key,
                {"values": {}, "left": 0, "cv": threading.Condition(self._coord_lock)},
            )
            entry["values"][rank] = value
            if len(entry["values"]) == size:
                entry["cv"].notify_all()
            else:
                while len(entry["values"]) < size:
                    if not entry["cv"].wait(timeout=self.deadlock_grace):
                        self._check_alive()
                        arrived = sorted(entry["values"])
                        raise DeadlockError(
                            f"coordination {key!r} stuck for "
                            f"{self.deadlock_grace:.1f}s: ranks {arrived} of "
                            f"{size} arrived; blocked receivers: "
                            f"{dict(self._waiting)}",
                            rank=rank,
                            pending=dict(self._waiting),
                        )
                    # woken: either everyone arrived or the fabric aborted
                    self._check_alive()
            values = entry["values"]
            entry["left"] += 1
            if entry["left"] == size:
                del self._coord[key]
            return values

    def fresh_uid(self) -> int:
        """A fabric-unique id (used to key coordination rounds)."""
        return next(self._uid)
