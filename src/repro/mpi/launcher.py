"""SPMD launcher: run one function on ``size`` rank threads.

The analog of ``mpiexec -n <size> python script.py``: every rank executes the
same function with its own :class:`~repro.mpi.comm.Communicator`.  Return
values are collected in rank order; the first rank exception aborts the
fabric (waking any blocked receivers) and is re-raised in the caller.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.cluster.clock import VirtualClock
from repro.cluster.model import ClusterModel
from repro.errors import MPIError
from repro.mpi.comm import Communicator
from repro.mpi.fabric import DEFAULT_DEADLOCK_GRACE, Fabric


@dataclass
class MPIRun:
    """Result of one SPMD run."""

    #: per-rank return values, in rank order
    results: list[Any]
    #: per-rank final virtual clocks (seconds); zeros without a cluster model
    clocks: list[float]
    #: total bytes moved through the fabric
    bytes_moved: int
    #: total messages moved through the fabric
    messages: int
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        """Simulated makespan: the maximum rank clock."""
        return max(self.clocks) if self.clocks else 0.0


def run_mpi(
    fn: Callable[..., Any],
    size: int,
    *,
    cluster: Optional[ClusterModel] = None,
    args: Sequence[Any] = (),
    kwargs: Optional[dict[str, Any]] = None,
    fault_injector: Optional[Any] = None,
    deadlock_grace: Optional[float] = None,
    start_time: float = 0.0,
) -> MPIRun:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` rank threads.

    When ``cluster`` is given its size must match ``size`` and each rank is
    charged virtual time for communication (and for whatever compute the rank
    charges explicitly via :meth:`Communicator.charge_compute`).

    ``fault_injector`` attaches a :class:`~repro.fault.injector.FaultInjector`
    to the fabric and every communicator; ``deadlock_grace`` overrides the
    fabric's blocked-wait budget before :class:`~repro.errors.DeadlockError`;
    ``start_time`` starts every rank's virtual clock at that many seconds
    (how retry backoff is charged to the next attempt).
    """
    if size < 1:
        raise MPIError(f"size must be >= 1, got {size!r}")
    if cluster is not None and cluster.size != size:
        raise MPIError(
            f"cluster model provides {cluster.size} ranks but run_mpi was asked for {size}"
        )
    kwargs = dict(kwargs or {})
    fabric = Fabric(
        size,
        deadlock_grace=deadlock_grace if deadlock_grace is not None else DEFAULT_DEADLOCK_GRACE,
        injector=fault_injector,
    )
    clocks = [VirtualClock(start_time) for _ in range(size)]
    comms = [
        Communicator(
            rank, fabric, cluster=cluster, clock=clocks[rank], injector=fault_injector
        )
        for rank in range(size)
    ]

    results: list[Any] = [None] * size
    errors: list[Optional[BaseException]] = [None] * size

    def worker(rank: int) -> None:
        try:
            results[rank] = fn(comms[rank], *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must not hang siblings
            errors[rank] = exc
            fabric.abort(exc)

    if size == 1:
        # fast path: no threads needed for a single rank
        worker(0)
    else:
        threads = [
            threading.Thread(target=worker, args=(rank,), name=f"mpi-rank-{rank}", daemon=True)
            for rank in range(size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300.0)
            if t.is_alive():
                fabric.abort(MPIError("rank thread did not finish within 300 s"))
        for t in threads:
            t.join(timeout=5.0)

    first_error = next((e for e in errors if e is not None), None)
    if first_error is not None:
        # prefer the exception that aborted the fabric: it is the root cause,
        # not a follow-on "communicator aborted" error from a sibling rank
        root = fabric.aborted
        raise root if root is not None else first_error

    return MPIRun(
        results=results,
        clocks=[c.now for c in clocks],
        bytes_moved=fabric.stats.bytes,
        messages=fabric.stats.messages,
    )
