"""Non-blocking communication requests (``isend``/``irecv`` handles)."""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.errors import MPIError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Communicator


class Request:
    """Handle returned by non-blocking operations.

    Sends in this runtime are eager (the payload is already in the destination
    mailbox when ``isend`` returns), so a send request completes immediately.
    A receive request performs the blocking match on :meth:`wait`.
    """

    def __init__(self) -> None:
        self._done = False

    def test(self) -> tuple[bool, Any]:
        """Return ``(completed, data)`` without blocking."""
        raise NotImplementedError

    def wait(self) -> Any:
        """Block until the operation completes; return received data (or None)."""
        raise NotImplementedError

    @property
    def completed(self) -> bool:
        return self._done


class SendRequest(Request):
    """An already-completed eager send."""

    def __init__(self) -> None:
        super().__init__()
        self._done = True

    def test(self) -> tuple[bool, Any]:
        return True, None

    def wait(self) -> None:
        return None


class RecvRequest(Request):
    """A pending receive; the match happens on :meth:`wait` / :meth:`test`."""

    def __init__(self, comm: "Communicator", source: int, tag: int) -> None:
        super().__init__()
        self._comm = comm
        self._source = source
        self._tag = tag
        self._data: Any = None

    def test(self) -> tuple[bool, Any]:
        if self._done:
            return True, self._data
        msg = self._comm._fabric.probe(self._comm.rank, self._source, self._tag)
        if msg is None:
            return False, None
        return True, self.wait()

    def wait(self) -> Any:
        if self._done:
            return self._data
        self._data = self._comm.recv(source=self._source, tag=self._tag)
        self._done = True
        return self._data


def wait_all(requests: list[Request]) -> list[Any]:
    """Wait for every request; returns their results in order."""
    if not isinstance(requests, (list, tuple)):
        raise MPIError("wait_all expects a list of requests")
    return [req.wait() for req in requests]
