"""Reduction operators for ``reduce``/``allreduce``/``scan``.

Each operator works both on scalars / Python objects (via the ``fn``
callable) and elementwise on numpy arrays (via ``ufunc`` when available).
All provided operators are associative; ``commutative`` is advisory and all
our tree algorithms preserve rank order, so non-commutative user-defined
operators are safe too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    """An associative reduction operator."""

    name: str
    fn: Callable[[Any, Any], Any]
    ufunc: Any = None  # numpy ufunc fast path, if one exists
    commutative: bool = True

    def __call__(self, a: Any, b: Any) -> Any:
        """Combine two values, preferring the numpy fast path for arrays."""
        if self.ufunc is not None and isinstance(a, np.ndarray):
            return self.ufunc(a, b)
        return self.fn(a, b)


def _maxloc(a, b):
    return a if a[0] >= b[0] else b


def _minloc(a, b):
    return a if a[0] <= b[0] else b


SUM = ReduceOp("SUM", lambda a, b: a + b, ufunc=np.add)
PROD = ReduceOp("PROD", lambda a, b: a * b, ufunc=np.multiply)
MAX = ReduceOp("MAX", lambda a, b: a if a >= b else b, ufunc=np.maximum)
MIN = ReduceOp("MIN", lambda a, b: a if a <= b else b, ufunc=np.minimum)
LAND = ReduceOp("LAND", lambda a, b: bool(a) and bool(b), ufunc=np.logical_and)
LOR = ReduceOp("LOR", lambda a, b: bool(a) or bool(b), ufunc=np.logical_or)
BAND = ReduceOp("BAND", lambda a, b: a & b, ufunc=np.bitwise_and)
BOR = ReduceOp("BOR", lambda a, b: a | b, ufunc=np.bitwise_or)
#: operands are ``(value, location)`` pairs; ties prefer the lower rank.
MAXLOC = ReduceOp("MAXLOC", _maxloc)
MINLOC = ReduceOp("MINLOC", _minloc)
