"""Receive-status object, mirroring ``MPI.Status``."""

from __future__ import annotations


class Status:
    """Filled in by ``recv``/``probe`` with message metadata."""

    __slots__ = ("source", "tag", "count")

    def __init__(self) -> None:
        self.source: int = -1
        self.tag: int = -1
        self.count: int = 0

    def Get_source(self) -> int:
        """Source rank of the matched message."""
        return self.source

    def Get_tag(self) -> int:
        """Tag of the matched message."""
        return self.tag

    def Get_count(self) -> int:
        """Payload size of the matched message in bytes."""
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Status(source={self.source}, tag={self.tag}, count={self.count})"
