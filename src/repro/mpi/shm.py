"""Zero-copy shared-memory transport for the process backend.

Thread ranks exchange Python objects by reference; process ranks cannot.
The naive fix — pickle everything through a pipe — re-serializes every
columnar payload at every exchange and erases the parallel speedup this
backend exists to deliver.  This module keeps the pipe for *headers only*
and moves the bytes through ``multiprocessing.shared_memory``:

* :func:`encode_payload` pickles an object with protocol 5 and a
  ``buffer_callback``, so every contiguous numpy array (``KVBatch``
  columns, partition arrays, ``Dataset.records``) is captured out-of-band
  instead of being copied into the pickle blob.  The raw buffers are
  written into one pooled segment; the :class:`ShmEnvelope` that crosses
  the pipe carries just the segment name, per-buffer offsets, dtype/shape
  (bare-array fast path) and a crc32.
* :func:`decode_payload` maps the segment in the receiving process and
  rebuilds the object with ``pickle.loads(..., buffers=...)`` over
  read-only views — array bodies are never copied.  A :class:`_Lease`
  watches the reconstructed views with ``weakref.finalize``; when the
  last one dies, the mapping is closed and the segment name is posted to
  the owner's release queue for reuse.
* :class:`ShmPool` is the per-rank segment allocator: size-class free
  lists plus the release queue mean an alltoall exchanges a handful of
  recycled segments instead of ``shm_open``-ing fresh ones every round.

Cleanup discipline: workers *never* unlink.  Every created segment name
is also pushed to a spawner-side ledger queue, and the spawner unlinks
the union of that ledger and a ``/dev/shm`` prefix scan once the workers
are gone — so neither a clean exit nor a crashed worker can leak
segments (pinned by the leak tests in ``tests/mpi``).
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import weakref
import zlib
from dataclasses import dataclass
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Callable, Iterable, Optional

import numpy as np

from repro.errors import MPIError

#: buffer start alignment inside a segment (cache line)
ALIGNMENT = 64

#: smallest segment size class; everything below rounds up to this
MIN_SEGMENT = 4096

#: envelope kinds: no out-of-band buffers / pickled object with external
#: buffers / bare ndarray described entirely by the header
KIND_INLINE = "inline"
KIND_OBJECT = "object"
KIND_ARRAY = "array"


def _untrack(name: str) -> None:
    """Withdraw a segment from the resource tracker (we own the lifecycle).

    Python's tracker would otherwise unlink segments when *any* process
    exits, yanking live blocks out from under sibling ranks.  Unregistering
    a name that was never registered is harmless.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:
        pass


def _track(name: str) -> None:
    """Re-register a segment so ``SharedMemory.unlink``'s own unregister balances.

    The creating worker withdrew the name (see :func:`_untrack`), but
    ``unlink()`` unconditionally sends an unregister message; without a
    matching register the tracker process logs a ``KeyError``.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register("/" + name, "shared_memory")
    except Exception:
        pass


def _attach(name: str) -> SharedMemory:
    """Open an existing segment and immediately withdraw it from the tracker.

    Python 3.11/3.12 register a POSIX segment on *attach* as well as create;
    left in place, a worker's private tracker would unlink other ranks'
    segments when that worker exits.  The immediate unregister balances the
    constructor's register in the same process, so every tracker only ever
    sees matched register/unregister pairs.
    """
    shm = SharedMemory(name=name)
    _untrack(name)
    return shm


#: mappings whose close raced a dying view's buffer export (a finalizer
#: runs *before* the dying array releases its export, so the first close
#: attempt can see live pointers); swept on later transport activity
_PENDING_CLOSE: list[SharedMemory] = []
_PENDING_LOCK = threading.Lock()


def _park_close(shm: SharedMemory) -> None:
    with _PENDING_LOCK:
        _PENDING_CLOSE.append(shm)


def sweep_pending_closes() -> None:
    """Retry closing mappings whose first close raced a dying view."""
    with _PENDING_LOCK:
        parked, _PENDING_CLOSE[:] = _PENDING_CLOSE[:], []
    for shm in parked:
        try:
            shm.close()
        except BufferError:
            _park_close(shm)


def _aligned(nbytes: int) -> int:
    return (nbytes + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _size_class(nbytes: int) -> int:
    """Round a request up to its power-of-two size class (min 4 KiB)."""
    cap = MIN_SEGMENT
    while cap < nbytes:
        cap *= 2
    return cap


@dataclass(frozen=True)
class ShmEnvelope:
    """The header that crosses the pipe in place of the payload bytes."""

    #: :data:`KIND_INLINE`, :data:`KIND_OBJECT` or :data:`KIND_ARRAY`
    kind: str
    #: pickle-5 skeleton (``None`` for the bare-array fast path)
    blob: Optional[bytes]
    #: shared-memory segment holding the buffers (``None`` when inline)
    segment: Optional[str]
    #: rank whose :class:`ShmPool` owns ``segment`` (release target)
    owner: int
    #: ``(offset, nbytes)`` per out-of-band buffer, in pickle order
    buffers: tuple[tuple[int, int], ...]
    #: dtype string / shape for :data:`KIND_ARRAY`
    dtype: Optional[str]
    shape: Optional[tuple[int, ...]]
    #: crc32 over blob + buffers, verified on decode
    crc: int
    #: logical payload size (blob + buffer bytes) for traffic accounting
    nbytes: int
    #: bytes that travelled out-of-band through the segment
    oob_bytes: int
    #: array bytes that fell back to travelling inside a pickle blob
    fallback_bytes: int


@dataclass
class PoolStats:
    """Segment-allocator counters shipped back to the driver."""

    created: int = 0
    reused: int = 0
    released: int = 0
    bytes_allocated: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for exit messages and ``extra["perf"]``."""
        return {
            "created": self.created,
            "reused": self.reused,
            "released": self.released,
            "bytes_allocated": self.bytes_allocated,
        }


class ShmPool:
    """Per-rank pooled segment allocator with size-class free lists.

    Segments come back via ``release_queue`` (posted by receivers when the
    last view over a segment dies) and are drained opportunistically on
    every :meth:`acquire`.  Every created name is mirrored to
    ``names_queue`` so the spawner can unlink the full ledger at shutdown;
    the pool itself only ever ``close()``-es its mappings.
    """

    def __init__(
        self,
        prefix: str,
        rank: int,
        release_queue: Any = None,
        names_queue: Any = None,
    ) -> None:
        self.prefix = prefix
        self.rank = rank
        self._release_queue = release_queue
        self._names_queue = names_queue
        self._blocks: dict[str, SharedMemory] = {}
        self._capacity: dict[str, int] = {}
        self._free: dict[int, list[str]] = {}
        self._seq = 0
        self.stats = PoolStats()

    def acquire(self, nbytes: int) -> SharedMemory:
        """Return a segment of capacity >= ``nbytes`` (recycled if possible)."""
        sweep_pending_closes()
        self.drain_releases()
        cap = _size_class(max(1, nbytes))
        free = self._free.get(cap)
        if free:
            self.stats.reused += 1
            return self._blocks[free.pop()]
        while True:  # skip names left over by an unrelated crashed run
            name = f"{self.prefix}r{self.rank}n{self._seq}"
            self._seq += 1
            try:
                shm = SharedMemory(name=name, create=True, size=cap)
                break
            except FileExistsError:
                continue
        _untrack(name)
        self._blocks[name] = shm
        self._capacity[name] = cap
        self.stats.created += 1
        self.stats.bytes_allocated += cap
        if self._names_queue is not None:
            self._names_queue.put(name)
        return shm

    def drain_releases(self) -> None:
        """Move every name posted to the release queue back to a free list."""
        if self._release_queue is None:
            return
        while True:
            try:
                name = self._release_queue.get_nowait()
            except queue.Empty:
                return
            except (OSError, ValueError):  # queue torn down mid-shutdown
                return
            if name in self._blocks:
                self._free.setdefault(self._capacity[name], []).append(name)
                self.stats.released += 1

    def close(self) -> None:
        """Unmap every block.  Unlinking is the spawner's job, never ours."""
        for shm in self._blocks.values():
            try:
                shm.close()
            except BufferError:  # a view still alive at exit; mapping dies with us
                pass
        self._blocks.clear()
        self._capacity.clear()
        self._free.clear()


# -- encoding ---------------------------------------------------------------


def encode_payload(obj: Any, pool: ShmPool) -> ShmEnvelope:
    """Encode ``obj`` for the pipe: header out, array bytes into a segment.

    Bare contiguous ndarrays skip pickle entirely (dtype/shape ride in the
    header).  Everything else goes through pickle protocol 5 with a
    ``buffer_callback``, so ndarrays *inside* containers (``KVBatch``,
    ``Dataset``, dicts of partitions) still travel out-of-band.  If
    out-of-band capture fails for an exotic payload, we fall back to a
    plain pickle and account the bytes as ``fallback_bytes`` — the
    ``comm.pickle_bytes`` counter the tests pin to zero for numpy payloads.
    """
    if (
        isinstance(obj, np.ndarray)
        and not obj.dtype.hasobject
        and obj.dtype.names is None  # structured dtypes keep fields via pickle
    ):
        return _encode_array(np.ascontiguousarray(obj), pool)

    pickle_buffers: list[pickle.PickleBuffer] = []
    try:
        blob = pickle.dumps(obj, protocol=5, buffer_callback=pickle_buffers.append)
    except Exception:
        for buf in pickle_buffers:
            buf.release()
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return ShmEnvelope(
            kind=KIND_INLINE, blob=blob, segment=None, owner=pool.rank,
            buffers=(), dtype=None, shape=None, crc=zlib.crc32(blob),
            nbytes=len(blob), oob_bytes=0, fallback_bytes=len(blob),
        )
    if not pickle_buffers:
        return ShmEnvelope(
            kind=KIND_INLINE, blob=blob, segment=None, owner=pool.rank,
            buffers=(), dtype=None, shape=None, crc=zlib.crc32(blob),
            nbytes=len(blob), oob_bytes=0, fallback_bytes=0,
        )

    raws = [buf.raw() for buf in pickle_buffers]
    spans: list[tuple[int, int]] = []
    total = 0
    for raw in raws:
        spans.append((total, raw.nbytes))
        total += _aligned(raw.nbytes)
    shm = pool.acquire(total)
    crc = zlib.crc32(blob)
    for (offset, nbytes), raw in zip(spans, raws):
        shm.buf[offset : offset + nbytes] = raw
        crc = zlib.crc32(raw, crc)
        raw.release()
    for buf in pickle_buffers:
        buf.release()
    oob = sum(nbytes for _, nbytes in spans)
    return ShmEnvelope(
        kind=KIND_OBJECT, blob=blob, segment=shm.name, owner=pool.rank,
        buffers=tuple(spans), dtype=None, shape=None, crc=crc,
        nbytes=len(blob) + oob, oob_bytes=oob, fallback_bytes=0,
    )


def _encode_array(arr: np.ndarray, pool: ShmPool) -> ShmEnvelope:
    """Bare-array fast path: no pickle at all, header carries dtype/shape."""
    if arr.nbytes == 0:
        return ShmEnvelope(
            kind=KIND_ARRAY, blob=None, segment=None, owner=pool.rank,
            buffers=(), dtype=arr.dtype.str, shape=tuple(arr.shape),
            crc=0, nbytes=0, oob_bytes=0, fallback_bytes=0,
        )
    shm = pool.acquire(arr.nbytes)
    flat = arr.reshape(-1).view(np.uint8)
    shm.buf[: arr.nbytes] = flat
    return ShmEnvelope(
        kind=KIND_ARRAY, blob=None, segment=shm.name, owner=pool.rank,
        buffers=((0, arr.nbytes),), dtype=arr.dtype.str,
        shape=tuple(arr.shape), crc=zlib.crc32(flat), nbytes=arr.nbytes,
        oob_bytes=arr.nbytes, fallback_bytes=0,
    )


# -- decoding ---------------------------------------------------------------


class _Lease:
    """Counts live views over one mapped segment; releases it at zero."""

    __slots__ = ("_shm", "_release_cb", "_left", "_lock")

    def __init__(self, shm: SharedMemory, release_cb: Optional[Callable[[], None]], views: int) -> None:
        self._shm = shm
        self._release_cb = release_cb
        self._left = views
        self._lock = threading.Lock()

    def drop(self) -> None:
        """One view died; on the last one, unmap and notify the owner.

        The release is posted *before* the close: the last view is already
        unreadable, so the owner may recycle the block, and the close may
        legitimately fail right now (the dying view's buffer export is
        still held during finalization) — such mappings are parked and
        swept by the next transport operation.
        """
        with self._lock:
            self._left -= 1
            if self._left:
                return
        if self._release_cb is not None:
            try:
                self._release_cb()
            except Exception:  # queue already gone at interpreter exit
                pass
        try:
            self._shm.close()
        except BufferError:
            _park_close(self._shm)


def decode_payload(
    envelope: ShmEnvelope,
    release_cb: Optional[Callable[[], None]] = None,
    copy: bool = False,
) -> Any:
    """Rebuild the object described by ``envelope`` in this process.

    With ``copy=False`` (the worker hot path) arrays are *views* over the
    mapped segment, marked read-only so a stray in-place mutation fails
    loudly instead of corrupting a pooled block; ``release_cb`` fires when
    the last view is garbage-collected.  With ``copy=True`` (the spawner
    materializing worker results) bytes are copied out, the mapping is
    closed immediately, and the returned arrays are ordinary writable
    memory.
    """
    if envelope.kind == KIND_INLINE:
        assert envelope.blob is not None
        if zlib.crc32(envelope.blob) != envelope.crc:
            raise MPIError("shared-memory transport: corrupt inline payload (crc mismatch)")
        return pickle.loads(envelope.blob)

    sweep_pending_closes()
    if envelope.segment is None:  # empty bare array
        return np.empty(envelope.shape or (0,), dtype=np.dtype(envelope.dtype))

    shm = _attach(envelope.segment)
    try:
        return _decode_mapped(envelope, shm, release_cb, copy)
    except Exception:
        # views created before the failure may still hold buffer exports;
        # park the mapping rather than let BufferError mask the real error
        try:
            shm.close()
        except BufferError:
            _park_close(shm)
        raise


def _decode_mapped(
    envelope: ShmEnvelope,
    shm: SharedMemory,
    release_cb: Optional[Callable[[], None]],
    copy: bool,
) -> Any:
    crc = zlib.crc32(envelope.blob) if envelope.blob is not None else 0

    if copy:
        chunks: list[bytearray] = []
        for offset, nbytes in envelope.buffers:
            view = memoryview(shm.buf)[offset : offset + nbytes]
            crc = zlib.crc32(view, crc)
            chunks.append(bytearray(view))
            view.release()
        _check_crc(crc, envelope)
        shm.close()
        if release_cb is not None:
            release_cb()
        if envelope.kind == KIND_ARRAY:
            arr = np.frombuffer(chunks[0], dtype=np.dtype(envelope.dtype))
            return arr.reshape(envelope.shape)
        assert envelope.blob is not None
        return pickle.loads(envelope.blob, buffers=chunks)

    views: list[np.ndarray] = []
    for offset, nbytes in envelope.buffers:
        view = np.frombuffer(shm.buf, dtype=np.uint8, count=nbytes, offset=offset)
        crc = zlib.crc32(view, crc)
        view.flags.writeable = False
        views.append(view)
    _check_crc(crc, envelope)
    lease = _Lease(shm, release_cb, len(views))
    for view in views:
        weakref.finalize(view, lease.drop)
    if envelope.kind == KIND_ARRAY:
        return views[0].view(np.dtype(envelope.dtype)).reshape(envelope.shape)
    assert envelope.blob is not None
    return pickle.loads(envelope.blob, buffers=views)


def _check_crc(crc: int, envelope: ShmEnvelope) -> None:
    if crc != envelope.crc:
        raise MPIError(
            f"shared-memory transport: corrupt payload in segment "
            f"{envelope.segment!r} (crc mismatch)"
        )


# -- spawner-side cleanup -----------------------------------------------------


def unlink_segments(names: Iterable[str]) -> int:
    """Unlink every named segment that still exists; return how many did."""
    count = 0
    for name in names:
        try:
            shm = _attach(name)
        except FileNotFoundError:
            continue
        except OSError:
            continue
        try:
            shm.close()
        except BufferError:
            pass
        _track(name)
        try:
            shm.unlink()
            count += 1
        except FileNotFoundError:
            _untrack(name)
    return count


def scan_segments(prefix: str) -> list[str]:
    """Names under ``/dev/shm`` carrying ``prefix`` (empty off Linux)."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    try:
        return sorted(n for n in os.listdir(shm_dir) if n.startswith(prefix))
    except OSError:
        return []
