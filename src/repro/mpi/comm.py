"""The communicator: point-to-point and collective operations.

API mirrors the mpi4py subset the rest of the repo uses.  Lowercase methods
communicate arbitrary pickled Python objects; capitalized methods move numpy
buffers without pickling (the "fast path" of the mpi4py tutorial).

Collectives use real distributed algorithms — binomial trees for
``bcast``/``reduce``, a dissemination ``barrier``, pairwise exchange for
``alltoall`` — so virtual-time accounting inherits their log-p / (p-1)-step
structure.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.cluster.clock import VirtualClock
from repro.cluster.model import ClusterModel
from repro.errors import MPIError
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL, UNDEFINED
from repro.mpi.fabric import Fabric, Message
from repro.mpi.reduce_ops import ReduceOp
from repro.mpi.request import RecvRequest, Request, SendRequest
from repro.mpi.status import Status

# Reserved internal tags; user tags must be >= 0.
_TAG_BCAST = -10
_TAG_REDUCE = -11
_TAG_SCATTER = -12
_TAG_GATHER = -13
_TAG_ALLTOALL = -14
_TAG_BARRIER = -15
_TAG_SCAN = -16
_TAG_BUFFER = -17


class Communicator:
    """One rank's endpoint of a communicator.

    Parameters
    ----------
    rank:
        This rank's index within the communicator.
    fabric:
        The shared :class:`~repro.mpi.fabric.Fabric` transport.
    cluster:
        Optional :class:`~repro.cluster.ClusterModel`; when given, every
        message advances per-rank virtual clocks.
    clock:
        This rank's :class:`~repro.cluster.VirtualClock` (created when omitted).
    rank_map:
        Communicator-rank -> world-rank mapping used for network cost lookups
        on sub-communicators produced by :meth:`split`.
    injector:
        Optional :class:`~repro.fault.injector.FaultInjector`; when given,
        compute charging honours straggler slowdowns and the runtimes'
        per-job :meth:`check_fault` calls can fire scheduled rank crashes.
    """

    def __init__(
        self,
        rank: int,
        fabric: Fabric,
        cluster: Optional[ClusterModel] = None,
        clock: Optional[VirtualClock] = None,
        rank_map: Optional[Sequence[int]] = None,
        injector: Optional[Any] = None,
    ) -> None:
        if not (0 <= rank < fabric.size):
            raise MPIError(f"rank {rank} out of range for size {fabric.size}")
        self.rank = rank
        self._fabric = fabric
        self.cluster = cluster
        self.clock = clock if clock is not None else VirtualClock()
        self._rank_map = list(rank_map) if rank_map is not None else list(range(fabric.size))
        self._coord_seq = 0
        self.injector = injector
        #: optional :class:`~repro.obs.span.Recorder` observing this rank's
        #: charge points (compute seconds, shuffle bytes, idle at barriers);
        #: ``None`` keeps every hook a single attribute test
        self.recorder: Optional[Any] = None

    # -- introspection -------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        return self._fabric.size

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    @property
    def stats(self):
        """Aggregate traffic counters shared by all ranks of this communicator."""
        return self._fabric.stats

    def world_rank(self, rank: Optional[int] = None) -> int:
        """World rank backing communicator rank ``rank`` (default: self)."""
        return self._rank_map[self.rank if rank is None else rank]

    # -- virtual-time charging -------------------------------------------------

    def charge_compute(self, seconds: float) -> None:
        """Advance this rank's clock by a local compute phase.

        Under fault injection a straggler rank's compute is stretched by its
        scheduled slowdown factor.
        """
        if self.injector is not None:
            seconds = self.injector.scale_compute(self.world_rank(), seconds)
        if self.recorder is not None and seconds > 0.0:
            self.recorder.count("compute.virtual_s", seconds, rank=self.world_rank())
        self.clock.advance(seconds)

    # -- fault-injection hook ---------------------------------------------------

    def check_fault(self, job_index: int, when: str) -> None:
        """Fire any crash fault scheduled for this rank at a job boundary.

        Called by the runtimes ``before`` and ``after`` each planned job;
        raises :class:`~repro.errors.InjectedFault` when the attached
        injector has a matching crash scheduled.  No-op without an injector.
        """
        if self.injector is not None:
            self.injector.check_crash(self.world_rank(), job_index, when)

    def _charge_send(self, nbytes: int, serialized: bool) -> float:
        """Advance the sender clock for send-side overhead; return send timestamp."""
        if self.recorder is not None:
            self.recorder.count("comm.sent_bytes", nbytes, rank=self.world_rank())
            self.recorder.count("comm.sent_messages", 1, rank=self.world_rank())
        if self.cluster is not None and serialized:
            self.clock.advance(self.cluster.cost.pack(nbytes))
        return self.clock.now

    def _charge_recv(self, msg: Message, serialized: bool) -> None:
        """Merge arrival time into the receiver clock.

        When a recorder is attached, the forward clock jump of the Lamport
        merge — how long this rank would have sat blocked waiting for the
        message — is charged to the ``idle.barrier_s`` or ``idle.recv_s``
        counter, which is where the timeline's "% idle at barriers" comes
        from.
        """
        if self.cluster is None:
            return
        src_world = self._rank_map[msg.source]
        dst_world = self._rank_map[self.rank]
        arrival = msg.timestamp + self.cluster.transfer_time(msg.nbytes, src_world, dst_world)
        if self.recorder is not None:
            wait = arrival - self.clock.now
            if wait > 0.0:
                kind = "idle.barrier_s" if msg.tag == _TAG_BARRIER else "idle.recv_s"
                self.recorder.count(kind, wait, rank=self.world_rank())
            self.recorder.count("comm.recv_bytes", msg.nbytes, rank=self.world_rank())
        self.clock.merge(arrival)
        if serialized:
            self.clock.advance(self.cluster.cost.pack(msg.nbytes))

    # -- point-to-point: object path ------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a pickled Python object (eager: never blocks)."""
        if dest == PROC_NULL:
            return
        payload, nbytes = self._fabric.encode_object(obj)
        ts = self._charge_send(nbytes, serialized=True)
        self._fabric.deliver(
            dest,
            Message(source=self.rank, tag=tag, payload=payload, nbytes=nbytes, timestamp=ts),
        )

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Any:
        """Receive one pickled Python object (blocking)."""
        if source == PROC_NULL:
            return None
        msg = self._fabric.collect(self.rank, source, tag)
        self._charge_recv(msg, serialized=True)
        if status is not None:
            status.source, status.tag, status.count = msg.source, msg.tag, msg.nbytes
        return self._fabric.decode_object(msg.payload)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (eager, completes immediately)."""
        self.send(obj, dest=dest, tag=tag)
        return SendRequest()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; match happens on ``wait()``/``test()``."""
        return RecvRequest(self, source, tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True when a matching message is already available."""
        return self._fabric.probe(self.rank, source, tag) is not None

    def sendrecv(self, obj: Any, dest: int, source: int = ANY_SOURCE, tag: int = 0) -> Any:
        """Combined send+receive (safe: sends are eager)."""
        self.send(obj, dest=dest, tag=tag)
        return self.recv(source=source, tag=tag)

    # -- point-to-point: buffer path --------------------------------------------

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        """Send a numpy array without pickling (zero-copy fast path)."""
        if dest == PROC_NULL:
            return
        arr = np.ascontiguousarray(buf)
        payload, nbytes = self._fabric.encode_buffer(arr)
        ts = self._charge_send(nbytes, serialized=False)
        self._fabric.deliver(
            dest,
            Message(
                source=self.rank,
                tag=tag,
                payload=payload,
                nbytes=nbytes,
                timestamp=ts,
                is_buffer=True,
            ),
        )

    def Recv(
        self,
        buf: np.ndarray,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> np.ndarray:
        """Receive into a preallocated numpy array; returns the filled view."""
        msg = self._fabric.collect(self.rank, source, tag)
        if not msg.is_buffer:
            raise MPIError("Recv matched a pickled message; use recv() instead")
        self._charge_recv(msg, serialized=False)
        incoming = self._fabric.decode_buffer(msg.payload)
        if buf.size < incoming.size:
            raise MPIError(
                f"receive buffer too small: {buf.size} elements < {incoming.size} incoming"
            )
        flat = buf.reshape(-1)
        flat[: incoming.size] = incoming.reshape(-1)
        if status is not None:
            status.source, status.tag, status.count = msg.source, msg.tag, msg.nbytes
        return buf

    # -- collectives: object path -------------------------------------------------

    def barrier(self) -> None:
        """Dissemination barrier: ceil(log2 p) rounds of token exchange."""
        size = self.size
        if size == 1:
            return
        shift = 1
        while shift < size:
            dest = (self.rank + shift) % size
            src = (self.rank - shift) % size
            self.send(None, dest=dest, tag=_TAG_BARRIER)
            self.recv(source=src, tag=_TAG_BARRIER)
            shift <<= 1

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast from ``root``."""
        size = self.size
        if size == 1:
            return obj
        vrank = (self.rank - root) % size
        mask = 1
        # receive from parent (non-root ranks)
        while mask < size:
            if vrank & mask:
                parent = ((vrank ^ mask) + root) % size
                obj = self.recv(source=parent, tag=_TAG_BCAST)
                break
            mask <<= 1
        else:
            # root: start forwarding from the top of the tree
            mask = 1
            while mask < size:
                mask <<= 1
        # forward to children below our level
        mask >>= 1
        while mask > 0:
            if vrank + mask < size and not (vrank & mask):
                child = ((vrank + mask) + root) % size
                self.send(obj, dest=child, tag=_TAG_BCAST)
            mask >>= 1
        return obj

    def reduce(self, obj: Any, op: ReduceOp, root: int = 0) -> Any:
        """Binomial-tree reduction to ``root``; combines in rank order."""
        size = self.size
        result = obj
        if size == 1:
            return result
        vrank = (self.rank - root) % size
        mask = 1
        while mask < size:
            if vrank & mask == 0:
                peer_v = vrank | mask
                if peer_v < size:
                    peer = (peer_v + root) % size
                    other = self.recv(source=peer, tag=_TAG_REDUCE)
                    result = op(result, other)
            else:
                parent = ((vrank ^ mask) + root) % size
                self.send(result, dest=parent, tag=_TAG_REDUCE)
                return None
            mask <<= 1
        return result if self.rank == root else None

    def allreduce(self, obj: Any, op: ReduceOp) -> Any:
        """Reduce to rank 0 then broadcast the result."""
        return self.bcast(self.reduce(obj, op, root=0), root=0)

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Root sends ``objs[i]`` to rank ``i``; returns the local element."""
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise MPIError(
                    f"scatter at root needs exactly {self.size} elements, "
                    f"got {None if objs is None else len(objs)}"
                )
            mine = objs[root]
            for dest in range(self.size):
                if dest != root:
                    self.send(objs[dest], dest=dest, tag=_TAG_SCATTER)
            return mine
        return self.recv(source=root, tag=_TAG_SCATTER)

    def gather(self, obj: Any, root: int = 0) -> Optional[list[Any]]:
        """Collect one object per rank at ``root`` (rank order)."""
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(source=src, tag=_TAG_GATHER)
            return out
        self.send(obj, dest=root, tag=_TAG_GATHER)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather to rank 0, broadcast the full list."""
        return self.bcast(self.gather(obj, root=0), root=0)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Pairwise exchange: rank ``i`` receives ``objs[i]`` from every rank."""
        size = self.size
        if len(objs) != size:
            raise MPIError(f"alltoall needs exactly {size} elements, got {len(objs)}")
        result: list[Any] = [None] * size
        result[self.rank] = objs[self.rank]
        for shift in range(1, size):
            dest = (self.rank + shift) % size
            src = (self.rank - shift) % size
            self.send(objs[dest], dest=dest, tag=_TAG_ALLTOALL)
            result[src] = self.recv(source=src, tag=_TAG_ALLTOALL)
        return result

    def scan(self, obj: Any, op: ReduceOp) -> Any:
        """Inclusive prefix reduction along the rank chain."""
        result = obj
        if self.rank > 0:
            prefix = self.recv(source=self.rank - 1, tag=_TAG_SCAN)
            result = op(prefix, obj)
        if self.rank + 1 < self.size:
            self.send(result, dest=self.rank + 1, tag=_TAG_SCAN)
        return result

    def exscan(self, obj: Any, op: ReduceOp, identity: Any) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``identity``."""
        inclusive = self.scan(obj, op)
        # shift the inclusive result right by one rank
        if self.rank + 1 < self.size:
            self.send(inclusive, dest=self.rank + 1, tag=_TAG_SCAN)
        if self.rank == 0:
            return identity
        return self.recv(source=self.rank - 1, tag=_TAG_SCAN)

    # -- collectives: buffer path ---------------------------------------------

    def Alltoallv(
        self, sendbuf: np.ndarray, sendcounts: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Variable all-to-all of a contiguous numpy buffer.

        ``sendbuf`` is split into ``size`` consecutive chunks of
        ``sendcounts[i]`` elements, chunk ``i`` going to rank ``i``.
        Returns ``(recvbuf, recvcounts)`` with chunks concatenated in rank
        order — the shuffle primitive of the MapReduce engine.
        """
        size = self.size
        sendcounts = np.asarray(sendcounts, dtype=np.int64)
        if sendcounts.shape != (size,):
            raise MPIError(f"sendcounts must have {size} entries")
        if sendcounts.sum() != len(sendbuf):
            raise MPIError(
                f"sendcounts sum to {int(sendcounts.sum())} but sendbuf has {len(sendbuf)} elements"
            )
        offsets = np.concatenate(([0], np.cumsum(sendcounts)))
        chunks: list[Optional[np.ndarray]] = [None] * size
        chunks[self.rank] = sendbuf[offsets[self.rank] : offsets[self.rank + 1]]
        for shift in range(1, size):
            dest = (self.rank + shift) % size
            src = (self.rank - shift) % size
            self.Send(sendbuf[offsets[dest] : offsets[dest + 1]], dest=dest, tag=_TAG_BUFFER)
            msg = self._fabric.collect(self.rank, src, _TAG_BUFFER)
            self._charge_recv(msg, serialized=False)
            chunks[src] = self._fabric.decode_buffer(msg.payload)
        recvcounts = np.array([len(c) for c in chunks], dtype=np.int64)
        recvbuf = (
            np.concatenate(chunks) if recvcounts.sum() > 0 else sendbuf[:0].copy()
        )
        return recvbuf, recvcounts

    def Bcast(self, buf: np.ndarray, root: int = 0) -> np.ndarray:
        """Binomial-tree broadcast of a numpy buffer (in place, fast path)."""
        size = self.size
        if size == 1:
            return buf
        vrank = (self.rank - root) % size
        mask = 1
        while mask < size:
            if vrank & mask:
                parent = ((vrank ^ mask) + root) % size
                self.Recv(buf, source=parent, tag=_TAG_BCAST)
                break
            mask <<= 1
        else:
            while mask < size:
                mask <<= 1
        mask >>= 1
        while mask > 0:
            if vrank + mask < size and not (vrank & mask):
                child = ((vrank + mask) + root) % size
                self.Send(buf, dest=child, tag=_TAG_BCAST)
            mask >>= 1
        return buf

    def Reduce(
        self, buf: np.ndarray, op: ReduceOp, root: int = 0
    ) -> Optional[np.ndarray]:
        """Binomial-tree elementwise reduction of numpy buffers."""
        size = self.size
        result = np.array(buf, copy=True)
        if size == 1:
            return result
        vrank = (self.rank - root) % size
        scratch = np.empty_like(result)
        mask = 1
        while mask < size:
            if vrank & mask == 0:
                peer_v = vrank | mask
                if peer_v < size:
                    peer = (peer_v + root) % size
                    self.Recv(scratch, source=peer, tag=_TAG_REDUCE)
                    result = op(result, scratch)
            else:
                parent = ((vrank ^ mask) + root) % size
                self.Send(result, dest=parent, tag=_TAG_REDUCE)
                return None
            mask <<= 1
        return result if self.rank == root else None

    def Allreduce(self, buf: np.ndarray, op: ReduceOp) -> np.ndarray:
        """Buffer reduce-to-root plus broadcast."""
        reduced = self.Reduce(buf, op, root=0)
        out = reduced if self.rank == 0 else np.empty_like(np.asarray(buf))
        return self.Bcast(out, root=0)

    def Allgatherv(self, sendbuf: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather variable-length numpy buffers from all ranks to all ranks.

        Returns ``(recvbuf, counts)`` with rank ``i``'s data at offset
        ``sum(counts[:i])``.
        """
        sendbuf = np.ascontiguousarray(sendbuf)
        counts = np.array(self.allgather(len(sendbuf)), dtype=np.int64)
        chunks: list[Optional[np.ndarray]] = [None] * self.size
        chunks[self.rank] = sendbuf
        for shift in range(1, self.size):
            dest = (self.rank + shift) % self.size
            src = (self.rank - shift) % self.size
            self.Send(sendbuf, dest=dest, tag=_TAG_BUFFER)
            msg = self._fabric.collect(self.rank, src, _TAG_BUFFER)
            self._charge_recv(msg, serialized=False)
            chunks[src] = self._fabric.decode_buffer(msg.payload)
        return np.concatenate(chunks), counts

    # -- communicator management ---------------------------------------------

    def split(self, color: int, key: Optional[int] = None) -> Optional["Communicator"]:
        """Partition the communicator by ``color``; order new ranks by ``key``.

        Ranks passing :data:`~repro.mpi.constants.UNDEFINED` get ``None``.
        """
        if key is None:
            key = self.rank
        self._coord_seq += 1
        seq = ("split", self._coord_seq)
        values = self._fabric.coordinate(seq, self.rank, (color, key), self.size)
        if color == UNDEFINED:
            # still participate in the fabric-exchange round below
            members: list[int] = []
        else:
            members = sorted(
                (r for r, (c, _k) in values.items() if c == color),
                key=lambda r: (values[r][1], r),
            )
        # leaders (lowest world rank per color) create the group fabric
        deposit = None
        if members and members[0] == self.rank:
            # the group fabric inherits the deadlock grace but not the fault
            # injector: message-fault links are defined in world-rank space
            deposit = (color, Fabric(len(members), deadlock_grace=self._fabric.deadlock_grace))
        self._coord_seq += 1
        fabrics = self._fabric.coordinate(("split-fab", self._coord_seq), self.rank, deposit, self.size)
        if color == UNDEFINED:
            return None
        group_fabric = next(f for d in fabrics.values() if d is not None for c, f in [d] if c == color)
        new_rank = members.index(self.rank)
        sub = Communicator(
            new_rank,
            group_fabric,
            cluster=self.cluster,
            clock=self.clock,
            rank_map=[self._rank_map[r] for r in members],
            injector=self.injector,
        )
        sub.recorder = self.recorder
        return sub

    def dup(self) -> "Communicator":
        """Duplicate the communicator (fresh fabric, same membership order)."""
        new = self.split(color=0, key=self.rank)
        assert new is not None
        return new

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Communicator(rank={self.rank}, size={self.size})"
