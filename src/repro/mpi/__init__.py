"""A pure-Python, thread-based SPMD MPI runtime.

The paper maps PaPar workflows onto MPI (MVAPICH2) and MR-MPI.  Neither is
installable here, so this package provides a faithful subset of the mpi4py
API that the rest of the repo programs against:

* pickle-based lowercase methods (``send``/``recv``/``bcast``/``scatter``/
  ``gather``/``alltoall``...) for generic Python objects, and
* buffer-based capitalized methods (``Send``/``Recv``/``Alltoallv``...) for
  numpy arrays — the "fast path" mirroring the mpi4py tutorial idiom.

Each rank runs as one OS thread; messages move through an in-process
:class:`~repro.mpi.fabric.Fabric`.  When a :class:`~repro.cluster.ClusterModel`
is attached, every message also advances per-rank virtual clocks, which is how
the evaluation figures obtain cluster-scale timings (DESIGN.md §6).

Collectives are implemented with real distributed algorithms (binomial-tree
broadcast/reduce, dissemination barrier, pairwise all-to-all) so that the
virtual-time accounting reflects log-p / p-1 step structure, not a magic
zero-cost shortcut.
"""

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL, UNDEFINED
from repro.mpi.comm import Communicator
from repro.mpi.launcher import run_mpi
from repro.mpi.reduce_ops import BAND, BOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM, ReduceOp
from repro.mpi.status import Status

__all__ = [
    "Communicator",
    "run_mpi",
    "Status",
    "ReduceOp",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "MAXLOC",
    "MINLOC",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "UNDEFINED",
]
