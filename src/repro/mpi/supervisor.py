"""Worker supervision for the process backend: sentinels, heartbeats, chaos.

The spawner used to block on ``result_queue.get(timeout=600)``: a rank that
was OOM-killed or wedged left the run stuck for the full timeout before
dying with a generic error.  This module watches three lanes at once so a
dead or hung rank is detected in *seconds* and classified:

* the **result queue** — normal exit messages;
* the **sentinels** — ``Process.is_alive()``/``exitcode``; a process that
  died without posting an exit message is classified by
  :func:`classify_exit` (negative exitcode → signal name, ``SIGKILL`` gets
  an OOM hint; positive → nonzero ``exit``; zero → silent death);
* a **heartbeat queue** — every worker runs a daemon
  :class:`HeartbeatSender` thread beating a few times a second; a rank
  that is alive but has not beaten for ``hang_timeout`` seconds is
  declared hung.  This catches *frozen* processes (stopped, or a C call
  holding the GIL forever), not merely slow ones — a busy pure-Python or
  numpy kernel keeps beating.

On any of these the :class:`Supervisor` raises
:class:`~repro.errors.WorkerCrash` and the spawner tears the whole gang
down (terminate, then kill after :data:`TERM_GRACE`).  Gang-restart on top
of this lives in :class:`~repro.core.process_runtime.ProcessRuntime`.

:class:`CrashAgent` is the *real*-fault chaos harness: armed by a test or
the ``--crash-agent`` CLI flag (or the ``PAPAR_CRASH_AGENT`` environment
variable), it rides the same job-boundary hook as the deterministic fault
injector (``Communicator.check_fault``) but fires OS-level faults —
``os.kill(SIGKILL)``, ``os._exit(code)``, or an honest hang — exactly once
per marker file, so a restarted gang does not crash again.
"""

from __future__ import annotations

import os
import queue as queue_mod
import signal
import threading
import time
from typing import Any, Iterator, Optional, Sequence

from repro.errors import MPIError, WorkerCrash

#: seconds between worker heartbeats
HEARTBEAT_INTERVAL = 0.2
#: seconds of heartbeat silence from a live process before it is declared hung
DEFAULT_HANG_TIMEOUT = 30.0
#: seconds after a sentinel fires to let an in-flight exit message arrive
DEAD_GRACE = 0.75
#: supervisor poll granularity (result-queue get timeout), seconds
POLL_INTERVAL = 0.05


class HeartbeatSender(threading.Thread):
    """Daemon thread beating a rank's liveness onto the heartbeat queue."""

    def __init__(self, rank: int, beat_queue: Any, interval: float = HEARTBEAT_INTERVAL) -> None:
        super().__init__(name=f"papar-heartbeat-{rank}", daemon=True)
        self.rank = rank
        self.beat_queue = beat_queue
        self.interval = interval
        self._stopped = threading.Event()

    def run(self) -> None:
        """Beat immediately, then every ``interval`` seconds until stopped."""
        while True:
            try:
                self.beat_queue.put_nowait(self.rank)
            except Exception:  # queue torn down at interpreter exit
                return
            if self._stopped.wait(self.interval):
                return

    def stop(self) -> None:
        """Stop beating (normal worker shutdown)."""
        self._stopped.set()

    # the chaos agent silences the heartbeat before hanging, so a hung rank
    # looks exactly like a frozen process rather than a politely idle one
    silence = stop


def classify_exit(rank: int, exitcode: Optional[int]) -> WorkerCrash:
    """Classify a worker that died without posting an exit message."""
    if exitcode is not None and exitcode < 0:
        try:
            signal_name = signal.Signals(-exitcode).name
        except ValueError:
            signal_name = f"signal {-exitcode}"
        hint = " (SIGKILL often means the OOM killer)" if -exitcode == signal.SIGKILL else ""
        return WorkerCrash(
            f"rank {rank} killed by {signal_name}{hint}",
            rank=rank, kind="signal", exitcode=exitcode, signal_name=signal_name,
        )
    if exitcode:  # positive and nonzero
        return WorkerCrash(
            f"rank {rank} exited with code {exitcode} without reporting a result",
            rank=rank, kind="exit", exitcode=exitcode,
        )
    return WorkerCrash(
        f"rank {rank} exited silently (code {exitcode}) without reporting a result",
        rank=rank, kind="silent", exitcode=exitcode,
    )


class Supervisor:
    """Watch a gang of rank processes: results, sentinels, heartbeats.

    :meth:`exits` yields exit messages as they arrive and raises
    :class:`~repro.errors.WorkerCrash` (classified) the moment a pending
    rank dies without one or stops heartbeating, or plain
    :class:`~repro.errors.MPIError` when the global ``timeout`` expires.
    """

    def __init__(
        self,
        procs: Sequence[Any],
        result_queue: Any,
        heartbeat_queue: Any,
        *,
        timeout: float = 600.0,
        hang_timeout: Optional[float] = DEFAULT_HANG_TIMEOUT,
        poll_interval: float = POLL_INTERVAL,
        dead_grace: float = DEAD_GRACE,
    ) -> None:
        self.procs = procs
        self.result_queue = result_queue
        self.heartbeat_queue = heartbeat_queue
        self.timeout = timeout
        self.hang_timeout = hang_timeout
        self.poll_interval = poll_interval
        self.dead_grace = dead_grace

    def _drain_beats(self, last_beat: dict[int, float]) -> None:
        """Stamp the arrival time of every queued heartbeat."""
        now = time.monotonic()
        while True:
            try:
                rank = self.heartbeat_queue.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                return
            last_beat[rank] = now

    def exits(self) -> Iterator[dict[str, Any]]:
        """Yield one exit message per rank; raise on crash, hang, or timeout."""
        pending = set(range(len(self.procs)))
        start = time.monotonic()
        deadline = start + self.timeout
        last_beat = {rank: start for rank in pending}
        dead_since: dict[int, float] = {}
        while pending:
            self._drain_beats(last_beat)
            try:
                msg = self.result_queue.get(timeout=self.poll_interval)
            except queue_mod.Empty:
                msg = None
            if msg is not None:
                pending.discard(msg["rank"])
                dead_since.pop(msg["rank"], None)
                yield msg
                continue
            now = time.monotonic()
            if now >= deadline:
                raise MPIError(
                    f"rank processes did not finish within {self.timeout}s "
                    f"(pending ranks {sorted(pending)})"
                )
            for rank in sorted(pending):
                proc = self.procs[rank]
                if not proc.is_alive():
                    # give an already-posted exit message a moment to surface
                    since = dead_since.setdefault(rank, now)
                    if now - since >= self.dead_grace:
                        raise classify_exit(rank, proc.exitcode)
                elif (
                    self.hang_timeout is not None
                    and now - last_beat[rank] > self.hang_timeout
                ):
                    raise WorkerCrash(
                        f"rank {rank} is alive but stopped heartbeating for "
                        f"{self.hang_timeout:.1f}s (frozen process?)",
                        rank=rank, kind="hang",
                    )


class CrashAgent:
    """Process-level chaos: SIGKILL / hang / nonzero-exit one rank, once.

    Implements the fault-injector duck interface the
    :class:`~repro.mpi.comm.Communicator` already calls at job boundaries
    (``check_crash(rank, job_index, when)`` / ``scale_compute``), but
    instead of raising a simulated :class:`InjectedFault` it commits a real
    OS-level crime.  ``marker`` is a filesystem path created with
    ``O_EXCL`` *before* firing — it survives the SIGKILL, so the restarted
    gang sees it and does not crash again.
    """

    def __init__(
        self,
        mode: str,
        rank: int,
        job: int = 0,
        when: str = "before",
        exit_code: int = 17,
        marker: Optional[str] = None,
    ) -> None:
        if mode not in ("kill", "hang", "exit"):
            raise ValueError(f"unknown crash-agent mode {mode!r}")
        if when not in ("before", "after"):
            raise ValueError(f"crash-agent when must be 'before' or 'after', got {when!r}")
        self.mode = mode
        self.rank = rank
        self.job = job
        self.when = when
        self.exit_code = exit_code
        self.marker = marker
        self._heartbeat: Optional[HeartbeatSender] = None

    @classmethod
    def from_spec(cls, spec: str) -> "CrashAgent":
        """Parse ``"kill:rank=1,job=2,when=after,marker=/tmp/m,code=9"``."""
        mode, _, rest = spec.partition(":")
        fields: dict[str, str] = {}
        for item in filter(None, rest.split(",")):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(f"bad crash-agent field {item!r} in {spec!r}")
            fields[key.strip()] = value.strip()
        known = {"rank", "job", "when", "marker", "code"}
        unknown = set(fields) - known
        if unknown:
            raise ValueError(f"unknown crash-agent field(s) {sorted(unknown)} in {spec!r}")
        if "rank" not in fields:
            raise ValueError(f"crash-agent spec {spec!r} must name a rank")
        return cls(
            mode.strip(),
            rank=int(fields["rank"]),
            job=int(fields.get("job", "0")),
            when=fields.get("when", "before"),
            exit_code=int(fields.get("code", "17")),
            marker=fields.get("marker"),
        )

    @classmethod
    def from_env(cls) -> Optional["CrashAgent"]:
        """Build an agent from ``PAPAR_CRASH_AGENT``, or ``None`` if unset."""
        spec = os.environ.get("PAPAR_CRASH_AGENT")
        return cls.from_spec(spec) if spec else None

    def bind_heartbeat(self, heartbeat: HeartbeatSender) -> None:
        """Give the agent the rank's heartbeat thread (silenced on hang)."""
        self._heartbeat = heartbeat

    # -- fault-injector duck interface ---------------------------------------

    def scale_compute(self, rank: int, seconds: float) -> float:
        """No straggler modelling: pass compute charges through unchanged."""
        return seconds

    def check_crash(self, rank: int, job_index: int, when: str) -> None:
        """Fire the configured real fault at the armed job boundary."""
        if rank != self.rank or job_index != self.job or when != self.when:
            return
        if not self._arm_once():
            return
        if self.mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.mode == "exit":
            # bypass the worker's exception handler and exit-message path
            os._exit(self.exit_code)
        else:  # hang: look frozen, not idle — silence the heartbeat first
            if self._heartbeat is not None:
                self._heartbeat.silence()
            while True:  # pragma: no cover - the supervisor kills us
                time.sleep(60)

    def _arm_once(self) -> bool:
        """Atomically claim the marker file; False if already fired."""
        if self.marker is None:
            return True
        try:
            fd = os.open(self.marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True


__all__ = [
    "CrashAgent",
    "DEAD_GRACE",
    "DEFAULT_HANG_TIMEOUT",
    "HEARTBEAT_INTERVAL",
    "HeartbeatSender",
    "POLL_INTERVAL",
    "Supervisor",
    "classify_exit",
]
