"""Wildcard and sentinel constants, mirroring their MPI counterparts."""

from __future__ import annotations

#: Match a message from any source rank in ``recv``/``irecv``/``probe``.
ANY_SOURCE: int = -1

#: Match a message with any tag.
ANY_TAG: int = -1

#: A null process: sends/receives to it complete immediately and carry no data.
PROC_NULL: int = -2

#: Color value for ranks excluded from a ``split``.
UNDEFINED: int = -32766
