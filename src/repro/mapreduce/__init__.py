"""An MR-MPI-style MapReduce engine on the simulated MPI runtime.

The paper maps PaPar onto three backends: Hadoop, MR-MPI (Plimpton & Devine's
C++ MapReduce-on-MPI library) and raw MPI.  The evaluation uses MR-MPI because
the driving applications are C++.  This package provides the equivalent:

* :class:`~repro.mapreduce.engine.MRMPIEngine` — per-rank map, hash/range/
  explicit shuffle over ``alltoall``, grouped reduce; mirrors the
  ``map -> collate -> reduce`` call sequence of MR-MPI.
* :class:`~repro.mapreduce.local.LocalEngine` — a serial reference
  implementation used to check that distributed runs compute the same result.
* :mod:`~repro.mapreduce.sampling` — the data-sampling machinery from
  Section III-D (per-node samples approximating the global key distribution
  to derive balanced reducer ranges).
* :mod:`~repro.mapreduce.hadoop` — the Hadoop ``InputFormat`` interface shim
  (``get_splits`` / ``get_record_reader``) mentioned in Section III-A.
"""

from repro.mapreduce.columnar import (
    COMBINERS,
    GroupedKVBatch,
    KVBatch,
    PerfCounters,
    VectorCombiner,
    bucketize,
    concat_batches,
)
from repro.mapreduce.engine import MRMPIEngine
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.local import LocalEngine
from repro.mapreduce.partitioner import (
    ExplicitPartitioner,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    stable_hash,
    stable_hash_array,
)
from repro.mapreduce.hadoop_engine import HadoopCluster, HadoopJobResult
from repro.mapreduce.rebalance import imbalance, rebalance
from repro.mapreduce.sampling import reservoir_sample, sample_key_ranges

__all__ = [
    "HadoopCluster",
    "HadoopJobResult",
    "rebalance",
    "imbalance",
    "MRMPIEngine",
    "LocalEngine",
    "MapReduceJob",
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "ExplicitPartitioner",
    "reservoir_sample",
    "sample_key_ranges",
    "stable_hash",
    "stable_hash_array",
    "KVBatch",
    "GroupedKVBatch",
    "PerfCounters",
    "VectorCombiner",
    "COMBINERS",
    "bucketize",
    "concat_batches",
]
