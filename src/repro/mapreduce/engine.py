"""The MR-MPI-style engine: map, collate (shuffle+group), reduce.

One :class:`MRMPIEngine` wraps one rank's :class:`~repro.mpi.Communicator`.
All ranks call the same methods collectively, exactly like MR-MPI's
``map() -> collate() -> reduce()`` sequence.  Intermediate data stays
in memory (MR-MPI's in-core mode), matching the paper's evaluation where
execution time excludes I/O.

Every phase accepts either the generic currency — Python ``(key, value)``
tuples, processed through per-pair loops — or a columnar
:class:`~repro.mapreduce.columnar.KVBatch`, which takes the vectorized fast
path (argsort bucketization, searchsorted/hash array partitioning,
``reduceat`` combiners).  Both paths produce identical outputs and charge
identical virtual-time costs; only wall-clock speed differs.

Virtual-time accounting: local phases charge the attached cluster cost model
(hashing for collate, comparison sort for sorted reduces, a linear pass for
map), and the shuffle charges network time through the MPI layer itself.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.errors import MapReduceError
from repro.mapreduce.columnar import (
    GroupedKVBatch,
    KVBatch,
    PerfCounters,
    bucketize,
    concat_batches,
)
from repro.mapreduce.columnar import group as columnar_group
from repro.mapreduce.partitioner import HashPartitioner, Partitioner
from repro.mpi.comm import Communicator

#: ``map_fn(item, emit)`` — calls ``emit(key, value)`` zero or more times.
MapFn = Callable[[Any, Callable[[Any, Any], None]], None]
#: ``reduce_fn(key, values, emit)`` — calls ``emit(key, value)``.
ReduceFn = Callable[[Any, list[Any], Callable[[Any, Any], None]], None]

KV = tuple[Any, Any]
#: what the shuffle-side phases accept: pairs, or a columnar batch
KVInput = Union[Sequence[KV], KVBatch]


class MRMPIEngine:
    """MapReduce primitives for one rank of an SPMD run."""

    def __init__(
        self,
        comm: Communicator,
        perf: Optional[PerfCounters] = None,
        recorder: Optional[Any] = None,
    ) -> None:
        self.comm = comm
        #: optional perf-counter sink (records / bytes moved by shuffles)
        self.perf = perf
        #: optional observability recorder (spans around each shuffle)
        self.recorder = recorder
        #: jobs this engine has started (fault-injection job boundary index)
        self.jobs_run = 0
        #: optional :class:`repro.ooc.spill.OOCContext` — set by a budgeted
        #: runtime; when present, columnar shuffles may spill to run files
        self.ooc: Optional[Any] = None

    def _shuffle_span(self, records: int, nbytes: int):
        return self.recorder.span(
            "shuffle", category="shuffle",
            rank=self.comm.rank, clock=self.comm.clock,
            attrs={"records": records, "nbytes": nbytes},
        )

    # -- cost charging -------------------------------------------------------

    def _charge(self, single_core_cost: float) -> None:
        cluster = self.comm.cluster
        if cluster is not None:
            self.comm.charge_compute(cluster.compute(single_core_cost))

    def charge_job_overhead(self) -> None:
        """Fixed per-job scheduling cost (mapper/reducer launch)."""
        cluster = self.comm.cluster
        if cluster is not None:
            self.comm.charge_compute(cluster.cost.job_overhead)

    # -- phases ----------------------------------------------------------------

    def map(self, local_items: Union[Iterable[Any], KVBatch], map_fn: Optional[MapFn]) -> KVInput:
        """Apply ``map_fn`` to this rank's local items; collect emitted pairs.

        A :class:`KVBatch` input stays columnar: ``map_fn=None`` (or
        :func:`identity_map`) passes the batch through unchanged, a map
        function exposing ``apply_batch(batch) -> KVBatch`` runs vectorized,
        and any other map function de-vectorizes to the per-pair loop.
        """
        cost = self.comm.cluster.cost if self.comm.cluster else None
        if isinstance(local_items, KVBatch):
            if cost is not None:
                self._charge(cost.stream(len(local_items)))
            if map_fn is None or map_fn is identity_map:
                return local_items
            apply_batch = getattr(map_fn, "apply_batch", None)
            if apply_batch is not None:
                return apply_batch(local_items)
            local_items = local_items.pairs()
            cost = None  # already charged for the pass
        if map_fn is None:
            map_fn = identity_map
        out: list[KV] = []
        emit = lambda k, v: out.append((k, v))  # noqa: E731 - tight inner loop
        count = 0
        for item in local_items:
            map_fn(item, emit)
            count += 1
        if cost is not None:
            self._charge(cost.stream(count))
        return out

    def combine(self, kv: KVInput, combine_fn: ReduceFn) -> KVInput:
        """Map-side combiner: pre-reduce local pairs before the shuffle.

        The classic MapReduce optimization — grouping and reducing each
        mapper's output locally shrinks the shuffle volume for aggregating
        reducers (word-count-style jobs).  ``combine_fn`` must be the same
        shape as the reduce function and associative.  A
        :class:`~repro.mapreduce.columnar.VectorCombiner` over a
        :class:`KVBatch` aggregates every group with one ``reduceat``.
        """
        cost = self.comm.cluster.cost if self.comm.cluster else None
        if cost is not None:
            self._charge(cost.hash_group(len(kv)))
        if isinstance(kv, KVBatch):
            apply_grouped = getattr(combine_fn, "apply_grouped", None)
            if apply_grouped is not None:
                return apply_grouped(columnar_group(kv, order="first-seen"))
            kv = kv.pairs()
        grouped: dict[Any, list[Any]] = {}
        for k, v in kv:
            grouped.setdefault(k, []).append(v)
        out: list[KV] = []
        emit = lambda k, v: out.append((k, v))  # noqa: E731
        for k, values in grouped.items():
            combine_fn(k, values, emit)
        return out

    def shuffle(self, kv: KVInput, partitioner: Partitioner) -> KVInput:
        """Exchange pairs so each lands on the rank chosen by ``partitioner``.

        The reducer space is ``partitioner.num_reducers``; reducers are mapped
        round-robin onto ranks (``reducer % comm.size``), so more reducers
        than ranks is fine (the Figure 8 workflow uses ``num_reducers=3``
        regardless of communicator size).

        A :class:`KVBatch` shuffles columnar: one vectorized
        ``partition_array`` call, one argsort bucketization, and numpy-array
        payloads through ``alltoall`` instead of tuple lists.
        """
        size = self.comm.size
        cost = self.comm.cluster.cost if self.comm.cluster else None
        if cost is not None:
            self._charge(cost.hash_group(len(kv)))
        if isinstance(kv, KVBatch):
            if self.ooc is not None:
                from repro.ooc.exchange import ooc_shuffle_kv

                return ooc_shuffle_kv(self, kv, partitioner)
            return self._shuffle_batch(kv, partitioner)
        outboxes: list[list[KV]] = [[] for _ in range(size)]
        for k, v in kv:
            outboxes[partitioner(k) % size].append((k, v))
        if self.perf is not None:
            self.perf.count_move(len(kv), 0)
        if self.recorder is not None:
            with self._shuffle_span(len(kv), 0):
                inboxes = self.comm.alltoall(outboxes)
        else:
            inboxes = self.comm.alltoall(outboxes)
        return [pair for box in inboxes for pair in box]

    def _shuffle_batch(self, kv: KVBatch, partitioner: Partitioner) -> KVBatch:
        """The in-memory columnar shuffle (the fast path of :meth:`shuffle`)."""
        size = self.comm.size
        owners = partitioner.partition_array(kv.keys) % size
        outboxes_b = [kv.take(idx) for idx in bucketize(owners, size)]
        if self.perf is not None:
            self.perf.count_move(len(kv), kv.nbytes)
        if self.recorder is not None:
            with self._shuffle_span(len(kv), kv.nbytes):
                inboxes_b = self.comm.alltoall(outboxes_b)
        else:
            inboxes_b = self.comm.alltoall(outboxes_b)
        return concat_batches(inboxes_b)

    def group(self, kv: KVInput) -> Union[list[tuple[Any, list[Any]]], GroupedKVBatch]:
        """Group local pairs by key, preserving first-seen key order."""
        cost = self.comm.cluster.cost if self.comm.cluster else None
        if cost is not None:
            self._charge(cost.hash_group(len(kv)))
        if isinstance(kv, KVBatch):
            return columnar_group(kv, order="first-seen")
        groups: dict[Any, list[Any]] = {}
        for k, v in kv:
            groups.setdefault(k, []).append(v)
        return list(groups.items())

    def collate(
        self,
        kv: KVInput,
        partitioner: Optional[Partitioner] = None,
        num_reducers: Optional[int] = None,
    ) -> Union[list[tuple[Any, list[Any]]], GroupedKVBatch]:
        """MR-MPI ``collate``: shuffle by key, then group locally."""
        if partitioner is None:
            partitioner = HashPartitioner(num_reducers or self.comm.size)
        return self.group(self.shuffle(kv, partitioner))

    def reduce(
        self,
        grouped: Union[Sequence[tuple[Any, list[Any]]], GroupedKVBatch],
        reduce_fn: ReduceFn,
    ) -> KVInput:
        """Apply ``reduce_fn`` to each local key group.

        Columnar groupings stay columnar for :func:`identity_reduce`
        (an index-free re-emit) and for vectorized combiners
        (``apply_grouped``); any other reduce function receives per-group
        numpy value slices through the generic loop.
        """
        cost = self.comm.cluster.cost if self.comm.cluster else None
        if isinstance(grouped, GroupedKVBatch):
            if cost is not None:
                self._charge(cost.stream(grouped.num_records))
            if reduce_fn is identity_reduce:
                return KVBatch(
                    keys=np.repeat(grouped.keys, grouped.counts), values=grouped.values
                )
            apply_grouped = getattr(reduce_fn, "apply_grouped", None)
            if apply_grouped is not None:
                return apply_grouped(grouped)
            grouped = grouped.items()
            cost = None  # already charged
        out: list[KV] = []
        emit = lambda k, v: out.append((k, v))  # noqa: E731
        total = 0
        for k, values in grouped:
            reduce_fn(k, values, emit)
            total += len(values)
        if cost is not None:
            self._charge(cost.stream(total))
        return out

    def sort_local(self, kv: KVInput, *, descending: bool = False) -> KVInput:
        """Stable sort of local pairs by key (the reducer-side sort of Fig. 9)."""
        cost = self.comm.cluster.cost if self.comm.cluster else None
        if cost is not None:
            self._charge(cost.sort(len(kv)))
        if isinstance(kv, KVBatch):
            keys = kv.keys
            if descending:
                if keys.dtype.kind not in "iuf":
                    raise MapReduceError(
                        f"descending columnar sort needs a numeric key dtype, got {keys.dtype}"
                    )
                keys = -keys.astype(np.int64) if keys.dtype.kind in "iu" else -keys
            return kv.take(np.argsort(keys, kind="stable"))
        return sorted(kv, key=lambda pair: pair[0], reverse=descending)

    # -- convenience -------------------------------------------------------------

    def run_job(
        self,
        local_items: Union[Iterable[Any], KVBatch],
        map_fn: Optional[MapFn],
        reduce_fn: ReduceFn,
        partitioner: Optional[Partitioner] = None,
        num_reducers: Optional[int] = None,
        sort_keys: bool = False,
        descending: bool = False,
        combiner: Optional[ReduceFn] = None,
    ) -> KVInput:
        """One full map -> (combine) -> collate -> (sort) -> reduce job.

        Each job is a fault-injection boundary: a scheduled rank crash for
        this engine's job index fires before the map phase or after the
        reduce phase (see :meth:`repro.mpi.comm.Communicator.check_fault`).
        """
        job_index = self.jobs_run
        self.jobs_run += 1
        self.comm.check_fault(job_index, "before")
        self.charge_job_overhead()
        kv = self.map(local_items, map_fn)
        if combiner is not None:
            kv = self.combine(kv, combiner)
        if partitioner is None:
            partitioner = HashPartitioner(num_reducers or self.comm.size)
        shuffled = self.shuffle(kv, partitioner)
        if sort_keys:
            shuffled = self.sort_local(shuffled, descending=descending)
        grouped = self.group(shuffled)
        out = self.reduce(grouped, reduce_fn)
        self.comm.check_fault(job_index, "after")
        return out

    def gather_output(self, local_output: Union[Sequence[Any], KVBatch]) -> Optional[list[Any]]:
        """Collect per-rank outputs at rank 0, concatenated in rank order."""
        if isinstance(local_output, KVBatch):
            local_output = local_output.pairs()
        chunks = self.comm.gather(list(local_output), root=0)
        if chunks is None:
            return None
        return [item for chunk in chunks for item in chunk]


def identity_map(item: Any, emit: Callable[[Any, Any], None]) -> None:
    """Map function for pre-keyed items: expects ``item == (key, value)``."""
    try:
        k, v = item
    except (TypeError, ValueError) as exc:
        raise MapReduceError(f"identity_map expects (key, value) pairs, got {item!r}") from exc
    emit(k, v)


def identity_reduce(key: Any, values: list[Any], emit: Callable[[Any, Any], None]) -> None:
    """Reduce function that re-emits every value under its key."""
    for v in values:
        emit(key, v)
