"""The MR-MPI-style engine: map, collate (shuffle+group), reduce.

One :class:`MRMPIEngine` wraps one rank's :class:`~repro.mpi.Communicator`.
All ranks call the same methods collectively, exactly like MR-MPI's
``map() -> collate() -> reduce()`` sequence.  Intermediate data stays
in memory (MR-MPI's in-core mode), matching the paper's evaluation where
execution time excludes I/O.

Virtual-time accounting: local phases charge the attached cluster cost model
(hashing for collate, comparison sort for sorted reduces, a linear pass for
map), and the shuffle charges network time through the MPI layer itself.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import MapReduceError
from repro.mapreduce.partitioner import HashPartitioner, Partitioner
from repro.mpi.comm import Communicator

#: ``map_fn(item, emit)`` — calls ``emit(key, value)`` zero or more times.
MapFn = Callable[[Any, Callable[[Any, Any], None]], None]
#: ``reduce_fn(key, values, emit)`` — calls ``emit(key, value)``.
ReduceFn = Callable[[Any, list[Any], Callable[[Any, Any], None]], None]

KV = tuple[Any, Any]


class MRMPIEngine:
    """MapReduce primitives for one rank of an SPMD run."""

    def __init__(self, comm: Communicator) -> None:
        self.comm = comm

    # -- cost charging -------------------------------------------------------

    def _charge(self, single_core_cost: float) -> None:
        cluster = self.comm.cluster
        if cluster is not None:
            self.comm.charge_compute(cluster.compute(single_core_cost))

    def charge_job_overhead(self) -> None:
        """Fixed per-job scheduling cost (mapper/reducer launch)."""
        cluster = self.comm.cluster
        if cluster is not None:
            self.comm.charge_compute(cluster.cost.job_overhead)

    # -- phases ----------------------------------------------------------------

    def map(self, local_items: Iterable[Any], map_fn: MapFn) -> list[KV]:
        """Apply ``map_fn`` to this rank's local items; collect emitted pairs."""
        out: list[KV] = []
        emit = lambda k, v: out.append((k, v))  # noqa: E731 - tight inner loop
        count = 0
        for item in local_items:
            map_fn(item, emit)
            count += 1
        cost = self.comm.cluster.cost if self.comm.cluster else None
        if cost is not None:
            self._charge(cost.stream(count))
        return out

    def combine(self, kv: Sequence[KV], combine_fn: ReduceFn) -> list[KV]:
        """Map-side combiner: pre-reduce local pairs before the shuffle.

        The classic MapReduce optimization — grouping and reducing each
        mapper's output locally shrinks the shuffle volume for aggregating
        reducers (word-count-style jobs).  ``combine_fn`` must be the same
        shape as the reduce function and associative.
        """
        grouped: dict[Any, list[Any]] = {}
        for k, v in kv:
            grouped.setdefault(k, []).append(v)
        out: list[KV] = []
        emit = lambda k, v: out.append((k, v))  # noqa: E731
        for k, values in grouped.items():
            combine_fn(k, values, emit)
        cost = self.comm.cluster.cost if self.comm.cluster else None
        if cost is not None:
            self._charge(cost.hash_group(len(kv)))
        return out

    def shuffle(self, kv: Sequence[KV], partitioner: Partitioner) -> list[KV]:
        """Exchange pairs so each lands on the rank chosen by ``partitioner``.

        The reducer space is ``partitioner.num_reducers``; reducers are mapped
        round-robin onto ranks (``reducer % comm.size``), so more reducers
        than ranks is fine (the Figure 8 workflow uses ``num_reducers=3``
        regardless of communicator size).
        """
        size = self.comm.size
        cost = self.comm.cluster.cost if self.comm.cluster else None
        if cost is not None:
            self._charge(cost.hash_group(len(kv)))
        outboxes: list[list[KV]] = [[] for _ in range(size)]
        for k, v in kv:
            outboxes[partitioner(k) % size].append((k, v))
        inboxes = self.comm.alltoall(outboxes)
        return [pair for box in inboxes for pair in box]

    def group(self, kv: Sequence[KV]) -> list[tuple[Any, list[Any]]]:
        """Group local pairs by key, preserving first-seen key order."""
        cost = self.comm.cluster.cost if self.comm.cluster else None
        if cost is not None:
            self._charge(cost.hash_group(len(kv)))
        groups: dict[Any, list[Any]] = {}
        for k, v in kv:
            groups.setdefault(k, []).append(v)
        return list(groups.items())

    def collate(
        self,
        kv: Sequence[KV],
        partitioner: Optional[Partitioner] = None,
        num_reducers: Optional[int] = None,
    ) -> list[tuple[Any, list[Any]]]:
        """MR-MPI ``collate``: shuffle by key, then group locally."""
        if partitioner is None:
            partitioner = HashPartitioner(num_reducers or self.comm.size)
        return self.group(self.shuffle(kv, partitioner))

    def reduce(
        self, grouped: Sequence[tuple[Any, list[Any]]], reduce_fn: ReduceFn
    ) -> list[KV]:
        """Apply ``reduce_fn`` to each local key group."""
        out: list[KV] = []
        emit = lambda k, v: out.append((k, v))  # noqa: E731
        total = 0
        for k, values in grouped:
            reduce_fn(k, values, emit)
            total += len(values)
        cost = self.comm.cluster.cost if self.comm.cluster else None
        if cost is not None:
            self._charge(cost.stream(total))
        return out

    def sort_local(self, kv: Sequence[KV], *, descending: bool = False) -> list[KV]:
        """Stable sort of local pairs by key (the reducer-side sort of Fig. 9)."""
        cost = self.comm.cluster.cost if self.comm.cluster else None
        if cost is not None:
            self._charge(cost.sort(len(kv)))
        return sorted(kv, key=lambda pair: pair[0], reverse=descending)

    # -- convenience -------------------------------------------------------------

    def run_job(
        self,
        local_items: Iterable[Any],
        map_fn: MapFn,
        reduce_fn: ReduceFn,
        partitioner: Optional[Partitioner] = None,
        num_reducers: Optional[int] = None,
        sort_keys: bool = False,
        descending: bool = False,
        combiner: Optional[ReduceFn] = None,
    ) -> list[KV]:
        """One full map -> (combine) -> collate -> (sort) -> reduce job."""
        self.charge_job_overhead()
        kv = self.map(local_items, map_fn)
        if combiner is not None:
            kv = self.combine(kv, combiner)
        if partitioner is None:
            partitioner = HashPartitioner(num_reducers or self.comm.size)
        shuffled = self.shuffle(kv, partitioner)
        if sort_keys:
            shuffled = self.sort_local(shuffled, descending=descending)
        grouped = self.group(shuffled)
        return self.reduce(grouped, reduce_fn)

    def gather_output(self, local_output: Sequence[Any]) -> Optional[list[Any]]:
        """Collect per-rank outputs at rank 0, concatenated in rank order."""
        chunks = self.comm.gather(list(local_output), root=0)
        if chunks is None:
            return None
        return [item for chunk in chunks for item in chunk]


def identity_map(item: Any, emit: Callable[[Any, Any], None]) -> None:
    """Map function for pre-keyed items: expects ``item == (key, value)``."""
    try:
        k, v = item
    except (TypeError, ValueError) as exc:
        raise MapReduceError(f"identity_map expects (key, value) pairs, got {item!r}") from exc
    emit(k, v)


def identity_reduce(key: Any, values: list[Any], emit: Callable[[Any, Any], None]) -> None:
    """Reduce function that re-emits every value under its key."""
    for v in values:
        emit(key, v)
