"""Columnar key-value batches and the vectorized shuffle kernels.

The generic :class:`~repro.mapreduce.engine.MRMPIEngine` phases move Python
``(key, value)`` tuples through per-pair loops; fine for arbitrary objects,
but the partitioning workflows only ever shuffle numpy-typed keys with
fixed-width record values.  This module keeps such batches columnar — one
keys array plus one values array (structured dtypes for records) — and
drives every phase with array kernels:

* :func:`bucketize` — one stable ``argsort`` + ``bincount`` + ``split``
  replaces the O(n * destinations) per-destination ``flatnonzero`` scans.
  Both workflow runtimes and the engine shuffle route through it.
* :func:`group` — stable ``argsort`` + run-boundary detection, optionally
  restoring the generic engine's first-seen group order exactly.
* vectorized hash / range / explicit partitioning via
  :meth:`~repro.mapreduce.partitioner.Partitioner.partition_array`.
* ``reduceat``-based combiners for the Table I aggregates
  (count / sum / min / max / mean).

Equivalence with the per-pair path is by construction (stable orderings
everywhere) and enforced by ``tests/mapreduce/test_columnar_equivalence.py``.

The module also hosts :class:`PerfCounters`, the lightweight perf layer the
runtimes thread through ``PartitionResult.extra["perf"]`` (printed by
``python -m repro run --stats``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import MapReduceError

__all__ = [
    "KVBatch",
    "GroupedKVBatch",
    "bucketize",
    "group",
    "concat_batches",
    "index_dtype",
    "PerfCounters",
    "VectorCombiner",
    "COMBINERS",
]


# -- index dtype selection ---------------------------------------------------

#: largest record count addressable by int32 indexes (module-level so tests
#: can lower it to exercise the int64 path without allocating 2**31 records)
_INT32_MAX = np.iinfo(np.int32).max


def index_dtype(n: int) -> np.dtype:
    """The index dtype for a batch of ``n`` records.

    int32 halves the footprint of the shuffle's index arrays and the
    ``reduceat`` offsets for every realistic batch; beyond 2**31 - 1
    records int32 would silently wrap (negative indexes → wrong or
    out-of-bounds buckets), so larger batches get int64.
    """
    return np.dtype(np.int64) if n > _INT32_MAX else np.dtype(np.int32)


# -- bucketization ----------------------------------------------------------


def bucketize(owners: np.ndarray, num_buckets: int) -> list[np.ndarray]:
    """Per-bucket index arrays for ``owners`` in one pass.

    Equivalent to ``[np.flatnonzero(owners == b) for b in range(num_buckets)]``
    — each bucket keeps the original relative order (the stable sort keeps
    shuffles deterministic and bit-identical to the scan version) — but costs
    one O(n log n) argsort instead of ``num_buckets`` O(n) scans.
    """
    owners = np.asarray(owners)
    if owners.ndim != 1:
        raise MapReduceError(f"owners must be 1-D, got shape {owners.shape}")
    if num_buckets < 1:
        raise MapReduceError(f"num_buckets must be >= 1, got {num_buckets!r}")
    if owners.size == 0:
        empty = np.empty(0, dtype=index_dtype(0))
        return [empty for _ in range(num_buckets)]
    if owners.dtype.kind not in "iu":
        owners = owners.astype(np.int64)
    lo, hi = int(owners.min()), int(owners.max())
    if lo < 0 or hi >= num_buckets:
        raise MapReduceError(
            f"owner ids must lie in [0, {num_buckets}), got range [{lo}, {hi}]"
        )
    order = np.argsort(owners, kind="stable").astype(
        index_dtype(owners.size), copy=False
    )
    counts = np.bincount(owners, minlength=num_buckets)
    return np.split(order, np.cumsum(counts[:-1]))


# -- the columnar batch -----------------------------------------------------


@dataclass
class KVBatch:
    """A batch of key-value pairs held as two aligned numpy arrays.

    ``keys`` is a 1-D array (int / bytes / float); ``values`` is a 1-D array
    of the same length — a structured dtype when each value is a record.
    """

    keys: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.keys = np.asarray(self.keys)
        self.values = np.asarray(self.values)
        if self.keys.ndim != 1:
            raise MapReduceError(f"KVBatch keys must be 1-D, got shape {self.keys.shape}")
        if len(self.keys) != len(self.values):
            raise MapReduceError(
                f"KVBatch length mismatch: {len(self.keys)} keys, {len(self.values)} values"
            )

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def nbytes(self) -> int:
        return self.keys.nbytes + self.values.nbytes

    def take(self, indices: np.ndarray) -> "KVBatch":
        idx = np.asarray(indices)
        return KVBatch(keys=self.keys[idx], values=self.values[idx])

    def pairs(self) -> list[tuple[Any, Any]]:
        """The batch as plain Python pairs (the generic engine's currency)."""
        return list(zip(self.keys.tolist(), self.values.tolist()))

    @classmethod
    def from_pairs(
        cls,
        pairs: Sequence[tuple[Any, Any]],
        key_dtype: Any = None,
        value_dtype: Any = None,
    ) -> "KVBatch":
        """Columnarize a pair list (pass ``value_dtype`` for record tuples)."""
        keys = np.array([k for k, _ in pairs], dtype=key_dtype)
        if value_dtype is not None:
            values = np.array([tuple(v) if isinstance(v, (list, tuple)) else v
                               for _, v in pairs], dtype=value_dtype)
        else:
            values = np.array([v for _, v in pairs])
        return cls(keys=keys, values=values)


def concat_batches(batches: Sequence[KVBatch]) -> KVBatch:
    """Concatenate batches in order (empty slices keep their dtype)."""
    if not batches:
        raise MapReduceError("cannot concatenate zero KVBatches")
    if len(batches) == 1:
        return batches[0]
    return KVBatch(
        keys=np.concatenate([b.keys for b in batches]),
        values=np.concatenate([b.values for b in batches]),
    )


@dataclass
class GroupedKVBatch:
    """A grouped batch: one key per group, values concatenated group-major.

    Group ``g`` owns ``values[offsets[g]:offsets[g+1]]``; ``offsets`` has
    ``num_groups + 1`` entries.  The columnar analog of the generic engine's
    ``list[(key, list[value])]``.
    """

    keys: np.ndarray
    values: np.ndarray
    offsets: np.ndarray

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def num_records(self) -> int:
        return len(self.values)

    @property
    def counts(self) -> np.ndarray:
        return np.diff(self.offsets)

    def value_slices(self) -> Iterator[tuple[Any, np.ndarray]]:
        for g in range(len(self.keys)):
            yield self.keys[g], self.values[self.offsets[g] : self.offsets[g + 1]]

    def items(self) -> list[tuple[Any, list[Any]]]:
        """The grouping as plain Python (mirrors ``MRMPIEngine.group``)."""
        keys = self.keys.tolist()
        values = self.values.tolist()
        offs = self.offsets.tolist()
        return [(keys[g], values[offs[g] : offs[g + 1]]) for g in range(len(keys))]


def group(batch: KVBatch, order: str = "first-seen") -> GroupedKVBatch:
    """Group a batch by key via one stable argsort + run-boundary detection.

    ``order="first-seen"`` reproduces the generic engine's dict grouping
    (groups appear in order of each key's first occurrence; values keep
    arrival order); ``order="key"`` leaves groups key-sorted, which is
    cheaper when the caller sorts anyway.
    """
    if order not in ("first-seen", "key"):
        raise MapReduceError(f"unknown group order {order!r}")
    n = len(batch)
    if n == 0:
        return GroupedKVBatch(
            keys=batch.keys, values=batch.values, offsets=np.zeros(1, dtype=index_dtype(0))
        )
    sort_idx = np.argsort(batch.keys, kind="stable")
    sorted_keys = batch.keys[sort_idx]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_keys[1:] != sorted_keys[:-1]
    starts = np.flatnonzero(boundary)
    lengths = np.diff(np.append(starts, n))
    if order == "first-seen":
        # the stable sort puts each key's earliest original index at its run
        # start, so ranking runs by that index restores dict insertion order
        seen = np.argsort(sort_idx[starts], kind="stable")
        gid_sorted = np.cumsum(boundary) - 1
        rank_of_group = np.empty(len(starts), dtype=np.int64)
        rank_of_group[seen] = np.arange(len(starts))
        sort_idx = sort_idx[np.argsort(rank_of_group[gid_sorted], kind="stable")]
        group_order = seen
    else:
        group_order = np.arange(len(starts))
    offsets = np.concatenate(([0], np.cumsum(lengths[group_order])))
    return GroupedKVBatch(
        keys=sorted_keys[starts][group_order],
        values=batch.values[sort_idx],
        # reduceat offsets sized to the batch: int32 until indexes could wrap
        offsets=offsets.astype(index_dtype(n)),
    )


# -- vectorized combiners (Table I aggregates) -----------------------------


class VectorCombiner:
    """A combiner usable by both engine paths.

    Called as a generic ``reduce_fn(key, values, emit)`` it aggregates one
    Python value list; handed a :class:`GroupedKVBatch` via
    :meth:`apply_grouped` it aggregates every group with one ``reduceat``.
    """

    name: str = "abstract"

    def __call__(self, key: Any, values: list[Any], emit: Callable[[Any, Any], None]) -> None:
        emit(key, self._scalar(values))

    def _scalar(self, values: list[Any]) -> Any:
        raise NotImplementedError

    def apply_grouped(self, grouped: GroupedKVBatch) -> KVBatch:
        raise NotImplementedError


class CountCombiner(VectorCombiner):
    name = "count"

    def _scalar(self, values: list[Any]) -> Any:
        return len(values)

    def apply_grouped(self, grouped: GroupedKVBatch) -> KVBatch:
        return KVBatch(keys=grouped.keys, values=grouped.counts.astype(np.int64))


class _ReduceatCombiner(VectorCombiner):
    """Aggregates via a numpy ufunc's ``reduceat`` over the group offsets."""

    ufunc: np.ufunc

    def _scalar(self, values: list[Any]) -> Any:
        return self.ufunc.reduce(np.asarray(values))

    def apply_grouped(self, grouped: GroupedKVBatch) -> KVBatch:
        if len(grouped) == 0:
            return KVBatch(keys=grouped.keys, values=grouped.values)
        out = self.ufunc.reduceat(grouped.values, grouped.offsets[:-1])
        return KVBatch(keys=grouped.keys, values=out)


class SumCombiner(_ReduceatCombiner):
    name = "sum"
    ufunc = np.add


class MinCombiner(_ReduceatCombiner):
    name = "min"
    ufunc = np.minimum


class MaxCombiner(_ReduceatCombiner):
    name = "max"
    ufunc = np.maximum


class MeanCombiner(VectorCombiner):
    name = "mean"

    def _scalar(self, values: list[Any]) -> Any:
        return float(np.asarray(values).mean())

    def apply_grouped(self, grouped: GroupedKVBatch) -> KVBatch:
        if len(grouped) == 0:
            return KVBatch(keys=grouped.keys, values=grouped.values.astype(np.float64))
        sums = np.add.reduceat(grouped.values.astype(np.float64), grouped.offsets[:-1])
        return KVBatch(keys=grouped.keys, values=sums / grouped.counts)


#: the Table I aggregate add-ons, by configuration name
COMBINERS: dict[str, VectorCombiner] = {
    c.name: c
    for c in (CountCombiner(), SumCombiner(), MinCombiner(), MaxCombiner(), MeanCombiner())
}


# -- perf counters -----------------------------------------------------------


@dataclass
class PerfCounters:
    """Records / bytes moved plus per-phase wall and virtual time.

    One instance per rank; :meth:`merge` folds rank counters into a run
    total (records and bytes sum; wall time sums — total CPU work across
    rank threads; virtual time takes the max — the critical path).
    """

    records_moved: int = 0
    bytes_moved: int = 0
    #: phase name -> [wall seconds, virtual seconds]
    phases: dict[str, list[float]] = field(default_factory=dict)
    #: out-of-core spill counters (empty unless a memory budget spilled);
    #: keys: runs_written / spilled_records / spilled_bytes / max_merge_fanin
    spill: dict[str, int] = field(default_factory=dict)

    def count_move(self, records: int, nbytes: int) -> None:
        self.records_moved += int(records)
        self.bytes_moved += int(nbytes)

    def add_spill(self, stats: dict) -> None:
        """Fold one rank's out-of-core spill counters into this instance."""
        for name, value in stats.items():
            if name == "max_merge_fanin":
                self.spill[name] = max(self.spill.get(name, 0), int(value))
            else:
                self.spill[name] = self.spill.get(name, 0) + int(value)

    @contextmanager
    def phase(self, name: str, clock: Any = None):
        """Time a phase: wall via ``perf_counter``, virtual via ``clock.now``."""
        t0 = time.perf_counter()
        v0 = clock.now if clock is not None else 0.0
        try:
            yield
        finally:
            wall = time.perf_counter() - t0
            virt = (clock.now - v0) if clock is not None else 0.0
            acc = self.phases.setdefault(name, [0.0, 0.0])
            acc[0] += wall
            acc[1] += virt

    def merge(self, other: "PerfCounters") -> None:
        self.records_moved += other.records_moved
        self.bytes_moved += other.bytes_moved
        for name, (wall, virt) in other.phases.items():
            acc = self.phases.setdefault(name, [0.0, 0.0])
            acc[0] += wall
            acc[1] = max(acc[1], virt)
        if other.spill:
            self.add_spill(other.spill)

    def summary(self) -> dict[str, Any]:
        """The JSON-friendly dict stored in ``PartitionResult.extra['perf']``.

        The ``spill`` block appears only when something actually spilled, so
        budget-free runs produce byte-identical summaries to older builds.
        """
        out: dict[str, Any] = {
            "records_moved": self.records_moved,
            "bytes_moved": self.bytes_moved,
            "phases": {
                name: {"wall_s": wall, "virtual_s": virt}
                for name, (wall, virt) in sorted(self.phases.items())
            },
        }
        if any(self.spill.values()):
            out["spill"] = {name: value for name, value in sorted(self.spill.items())}
        return out

    @staticmethod
    def merge_ranks(counters: Sequence[Optional["PerfCounters"]]) -> "PerfCounters":
        total = PerfCounters()
        for c in counters:
            if c is not None:
                total.merge(c)
        return total


def payload_nbytes(payload: Any) -> int:
    """Logical byte size of a shuffle payload (0 when unknown)."""
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    return 0
