"""Dynamic reducer rebalancing (the paper's Related Work extension).

"It is possible to extend PaPar to support the dynamic workload
redistribution.  For example, when repartitioning intermediate data from
Mappers to Reducers is necessary, we can use the PaPar distribution function
with the cyclic policy to rebalance the key-value pairs between reducers."

:func:`rebalance` implements exactly that: given each rank's in-flight
key-value pairs (an arbitrarily skewed reducer assignment), it redistributes
them with the cyclic distribution function so every rank ends up within one
pair of every other — while preserving the global pair order, so downstream
sorted consumers are unaffected.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.mpi import SUM
from repro.mpi.comm import Communicator

_TAG_REBALANCE = 20_001


def imbalance(comm: Communicator, local_count: int) -> float:
    """Max/mean ratio of per-rank loads across the communicator."""
    counts = comm.allgather(local_count)
    total = sum(counts)
    if total == 0:
        return 1.0
    return max(counts) / (total / len(counts))


def rebalance(comm: Communicator, local_items: Sequence[Any]) -> list[Any]:
    """Redistribute items so ranks hold balanced, order-preserving shares.

    Item with global position ``g`` (by rank order, then local order) moves
    to the rank that owns position ``g`` under a balanced block layout; the
    relative order of any two items is preserved.
    """
    local_items = list(local_items)
    n_local = len(local_items)
    total = comm.allreduce(n_local, SUM)
    offset = comm.exscan(n_local, SUM, identity=0)
    size = comm.size
    base, extra = divmod(total, size)
    # owner of each global position under the balanced layout
    bounds = np.cumsum([base + (1 if r < extra else 0) for r in range(size)])
    global_idx = np.arange(n_local, dtype=np.int64) + offset
    owners = np.searchsorted(bounds, global_idx, side="right")
    outboxes: list[list[tuple[int, Any]]] = [[] for _ in range(size)]
    for g, owner, item in zip(global_idx.tolist(), owners.tolist(), local_items):
        outboxes[owner].append((g, item))
    inboxes = comm.alltoall(outboxes)
    received = [pair for box in inboxes for pair in box]
    received.sort(key=lambda pair: pair[0])
    return [item for _, item in received]
