"""Data sampling for reducer load balance (paper Section III-D).

For a ``sort`` job the mappers need a temporary reduce-key that corresponds
to a *range* of the user key, and naive uniform ranges produce badly skewed
reducers when the key distribution is skewed.  Following the mechanism of
TopCluster (Gufler et al., ICDE 2012) cited by the paper, every rank samples
its local data, the samples are combined to approximate the global
distribution, and reducer boundaries are taken at the sample quantiles.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import MapReduceError


def reservoir_sample(
    items: Sequence[Any], k: int, rng: Optional[np.random.Generator] = None
) -> list[Any]:
    """Uniform sample of ``min(k, len(items))`` elements (Algorithm R)."""
    if k < 0:
        raise MapReduceError(f"sample size must be non-negative, got {k!r}")
    rng = rng if rng is not None else np.random.default_rng(0)
    n = len(items)
    if n <= k:
        return list(items)
    if isinstance(items, np.ndarray):
        # fast path for large arrays: uniform sample without replacement
        idx = rng.choice(n, size=k, replace=False)
        return list(items[idx])
    # vectorized reservoir: positions i >= k replace slot j ~ U[0, i] if j < k
    reservoir = list(items[:k])
    draws = rng.integers(0, np.arange(k, n) + 1)
    for offset, j in enumerate(draws):
        if j < k:
            reservoir[j] = items[k + offset]
    return reservoir


def quantile_boundaries(samples: Sequence[Any], num_reducers: int) -> list[Any]:
    """Reducer split points at the ``i/num_reducers`` quantiles of ``samples``."""
    if num_reducers < 1:
        raise MapReduceError(f"num_reducers must be >= 1, got {num_reducers!r}")
    if num_reducers == 1:
        return []
    if not samples:
        raise MapReduceError("cannot derive range boundaries from an empty sample")
    ordered = sorted(samples)
    n = len(ordered)
    return [ordered[min(n - 1, (i * n) // num_reducers)] for i in range(1, num_reducers)]


def sample_key_ranges(
    comm,
    local_keys: Sequence[Any],
    num_reducers: int,
    sample_size: int = 1024,
    seed: int = 0,
) -> list[Any]:
    """Distributed boundary derivation: sample locally, allgather, take quantiles.

    Every rank returns the same boundary list (deterministic given ``seed``),
    suitable for :class:`~repro.mapreduce.partitioner.RangePartitioner`.
    """
    rng = np.random.default_rng(seed + 1000 * comm.rank)
    local = reservoir_sample(local_keys, sample_size, rng)
    all_samples = [s for chunk in comm.allgather(local) for s in chunk]
    if not all_samples:
        raise MapReduceError("no rank contributed samples; is the input empty?")
    return quantile_boundaries(all_samples, num_reducers)
