"""Serial reference MapReduce engine.

Computes exactly what a distributed :class:`~repro.mapreduce.engine.MRMPIEngine`
run computes, without MPI.  Tests use it to check the distributed engine's
output equivalence; the PaPar code generator also targets it for
single-process partitioner binaries.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.mapreduce.engine import KV, MapFn, ReduceFn
from repro.mapreduce.partitioner import HashPartitioner, Partitioner


class LocalEngine:
    """Single-process MapReduce with the same phase API as MRMPIEngine."""

    size = 1

    def map(self, items: Iterable[Any], map_fn: MapFn) -> list[KV]:
        out: list[KV] = []
        emit = lambda k, v: out.append((k, v))  # noqa: E731
        for item in items:
            map_fn(item, emit)
        return out

    def shuffle(self, kv: Sequence[KV], partitioner: Partitioner) -> list[KV]:
        """Reorder pairs into reducer-bucket order (what a 1-rank shuffle sees)."""
        buckets: list[list[KV]] = [[] for _ in range(partitioner.num_reducers)]
        for k, v in kv:
            buckets[partitioner(k)].append((k, v))
        return [pair for bucket in buckets for pair in bucket]

    def group(self, kv: Sequence[KV]) -> list[tuple[Any, list[Any]]]:
        groups: dict[Any, list[Any]] = {}
        for k, v in kv:
            groups.setdefault(k, []).append(v)
        return list(groups.items())

    def collate(
        self,
        kv: Sequence[KV],
        partitioner: Optional[Partitioner] = None,
        num_reducers: Optional[int] = None,
    ) -> list[tuple[Any, list[Any]]]:
        if partitioner is None:
            partitioner = HashPartitioner(num_reducers or 1)
        return self.group(self.shuffle(kv, partitioner))

    def reduce(
        self, grouped: Sequence[tuple[Any, list[Any]]], reduce_fn: ReduceFn
    ) -> list[KV]:
        out: list[KV] = []
        emit = lambda k, v: out.append((k, v))  # noqa: E731
        for k, values in grouped:
            reduce_fn(k, values, emit)
        return out

    def sort_local(self, kv: Sequence[KV], *, descending: bool = False) -> list[KV]:
        return sorted(kv, key=lambda pair: pair[0], reverse=descending)

    def run_job(
        self,
        items: Iterable[Any],
        map_fn: MapFn,
        reduce_fn: ReduceFn,
        partitioner: Optional[Partitioner] = None,
        num_reducers: Optional[int] = None,
        sort_keys: bool = False,
        descending: bool = False,
    ) -> list[KV]:
        kv = self.map(items, map_fn)
        if partitioner is None:
            partitioner = HashPartitioner(num_reducers or 1)
        shuffled = self.shuffle(kv, partitioner)
        if sort_keys:
            shuffled = self.sort_local(shuffled, descending=descending)
        grouped = self.group(shuffled)
        return self.reduce(grouped, reduce_fn)
