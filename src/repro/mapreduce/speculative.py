"""Speculative task scheduling: the runtime skew mechanism of Section I/II.

The paper's motivation: systems like Hadoop handle skew at *runtime* —
"speculative scheduling to replicate last few tasks of a job on different
compute nodes" (also LATE, Mantri) — but "they can not get optimal
application performance, because the runtime of application not only
depends on input data size but also algorithms that will be applied on
data."  Application-specific partitioning removes the skew at its source.

This module is a deterministic discrete-event simulation of that mechanism:
a job of tasks with given durations runs on a fixed number of slots; when
fewer than ``speculative_threshold`` tasks remain, a backup copy of the
slowest running task is launched on a free slot (the first copy to finish
wins, Hadoop semantics).  The benchmark suite uses it to reproduce the
paper's argument quantitatively: speculation trims the straggler tail a
little, balanced partitions (what the cyclic policy produces) remove it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.errors import MapReduceError


@dataclass
class ScheduleReport:
    """Outcome of one simulated job execution."""

    makespan: float
    tasks_run: int
    speculative_copies: int
    wasted_work: float = 0.0
    timeline: list[tuple[float, str]] = field(default_factory=list)


def simulate_job(
    durations: np.ndarray,
    slots: int,
    speculative: bool = False,
    speculative_threshold: int = 0,
    backup_speedup: float = 1.0,
) -> ScheduleReport:
    """Simulate running ``len(durations)`` tasks on ``slots`` slots.

    ``speculative_threshold`` — launch backups when at most this many tasks
    are still unfinished (Hadoop speculates on the "last few" tasks).
    ``backup_speedup`` — backup copies run this much faster (e.g. the
    original was on a slow node); 1.0 means the backup can only win by
    starting on an otherwise idle slot, which cannot happen for a running
    task, so a speedup > 1 is what makes speculation useful.
    """
    durations = np.asarray(durations, dtype=np.float64)
    if len(durations) == 0:
        return ScheduleReport(makespan=0.0, tasks_run=0, speculative_copies=0)
    if np.any(durations < 0):
        raise MapReduceError("task durations must be non-negative")
    if slots < 1:
        raise MapReduceError(f"slots must be >= 1, got {slots!r}")
    if backup_speedup <= 0:
        raise MapReduceError("backup_speedup must be positive")

    n = len(durations)
    pending = list(range(n))  # FIFO task queue
    # events: (finish_time, task_id, is_backup, start_time)
    events: list[tuple[float, int, bool, float]] = []
    finished: set[int] = set()
    has_backup: set[int] = set()
    busy = 0
    now = 0.0
    copies = 0
    wasted = 0.0
    timeline: list[tuple[float, str]] = []

    def launch(task: int, is_backup: bool, start: float) -> None:
        nonlocal busy, copies
        busy += 1
        run = durations[task] / (backup_speedup if is_backup else 1.0)
        heapq.heappush(events, (start + run, task, is_backup, start))
        if is_backup:
            copies += 1
            timeline.append((start, f"backup task {task}"))

    # fill the initial wave
    while pending and busy < slots:
        launch(pending.pop(0), False, 0.0)

    while events:
        now, task, is_backup, started = heapq.heappop(events)
        busy -= 1
        finished.add(task)
        timeline.append((now, f"finish task {task}"))
        # Hadoop kills the losing copy the moment one copy wins
        losers = [e for e in events if e[1] == task]
        if losers:
            for _, _, _, loser_start in losers:
                wasted += now - loser_start
                busy -= 1
            events = [e for e in events if e[1] != task]
            heapq.heapify(events)
        # schedule new work on the freed slot
        while pending and busy < slots:
            launch(pending.pop(0), False, now)
        if speculative and not pending:
            remaining = [
                t for (_, t, _, _) in events if t not in finished and t not in has_backup
            ]
            if 0 < len(set(remaining)) <= speculative_threshold:
                # back up the task expected to finish last
                slowest = max(set(remaining), key=lambda t: durations[t])
                if busy < slots:
                    has_backup.add(slowest)
                    launch(slowest, True, now)
        # when a backup wins, the original's eventual pop is discarded above

    return ScheduleReport(
        makespan=now,
        tasks_run=n,
        speculative_copies=copies,
        wasted_work=wasted,
        timeline=timeline,
    )


def skewed_task_durations(
    num_tasks: int, mean: float = 1.0, skew: float = 3.0, seed: int = 0
) -> np.ndarray:
    """Task durations with a heavy tail (what skewed partitions produce)."""
    if num_tasks < 1:
        raise MapReduceError(f"num_tasks must be >= 1, got {num_tasks!r}")
    rng = np.random.default_rng(seed)
    base = rng.lognormal(mean=np.log(mean), sigma=0.2, size=num_tasks)
    # one straggler per ~8 tasks, `skew` times slower
    stragglers = rng.random(num_tasks) < 1.0 / 8.0
    base[stragglers] *= skew
    return base


def balanced_task_durations(num_tasks: int, total_work: float) -> np.ndarray:
    """Perfectly balanced durations with the same total work (the cyclic
    partitioning outcome)."""
    if num_tasks < 1:
        raise MapReduceError(f"num_tasks must be >= 1, got {num_tasks!r}")
    return np.full(num_tasks, total_work / num_tasks)
