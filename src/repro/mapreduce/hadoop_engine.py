"""A Hadoop-style local job runner with a disk-based shuffle.

The paper's first backend mapping: "On Hadoop, we implement the interfaces
of processing structured data by inheriting InputFormat class.  We implement
those operators in Java, and generate Hadoop jobs for the workflow."

This engine reproduces Hadoop's execution structure in one process:

* the job input is an :class:`~repro.mapreduce.hadoop.InputFormat`;
  ``get_splits`` carves it into one slice per map task;
* each **map task** runs the mapper over its split and *spills* its output
  to disk, one spill file per reducer (the map-side partition);
* each **reduce task** pulls its spill files from every map task (mapper
  order), optionally sorts by key, groups, reduces, and writes a
  ``part-NNNNN`` output file.

The same map/reduce functions run unchanged on
:class:`~repro.mapreduce.engine.MRMPIEngine`, which is the point of the
paper's backend abstraction.  (Hadoop's speculative task re-execution is a
fault-tolerance mechanism with no effect on results; it is out of scope
here.)
"""

from __future__ import annotations

import os
import pickle
import shutil
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.errors import MapReduceError
from repro.mapreduce.engine import KV, MapFn, ReduceFn
from repro.mapreduce.hadoop import InputFormat, ListInputFormat
from repro.mapreduce.partitioner import HashPartitioner, Partitioner

PathLike = Union[str, os.PathLike]


@dataclass
class JobCounters:
    """Hadoop-style job counters."""

    map_tasks: int = 0
    reduce_tasks: int = 0
    map_input_records: int = 0
    map_output_records: int = 0
    reduce_input_groups: int = 0
    reduce_output_records: int = 0
    spilled_bytes: int = 0


@dataclass
class HadoopJobResult:
    """Output of one job: per-reducer output files plus counters."""

    output_dir: str
    part_files: list[str] = field(default_factory=list)
    counters: JobCounters = field(default_factory=JobCounters)

    def read_output(self) -> list[KV]:
        """All output pairs, in reducer order."""
        out: list[KV] = []
        for path in self.part_files:
            with open(path, "rb") as fh:
                out.extend(pickle.load(fh))
        return out


class HadoopCluster:
    """A single-process Hadoop stand-in rooted at a working directory."""

    def __init__(self, work_dir: PathLike, num_mappers: int = 4) -> None:
        if num_mappers < 1:
            raise MapReduceError(f"num_mappers must be >= 1, got {num_mappers!r}")
        self.work_dir = os.fspath(work_dir)
        self.num_mappers = num_mappers
        self._job_seq = 0
        os.makedirs(self.work_dir, exist_ok=True)

    # -- job submission --------------------------------------------------------

    def run_job(
        self,
        input_format: InputFormat,
        map_fn: MapFn,
        reduce_fn: ReduceFn,
        partitioner: Optional[Partitioner] = None,
        num_reducers: int = 2,
        sort_keys: bool = False,
        descending: bool = False,
        combiner: Optional[ReduceFn] = None,
        job_name: str = "job",
    ) -> HadoopJobResult:
        """Run one MapReduce job end to end through the disk shuffle."""
        if num_reducers < 1:
            raise MapReduceError(f"num_reducers must be >= 1, got {num_reducers!r}")
        if partitioner is None:
            partitioner = HashPartitioner(num_reducers)
        if partitioner.num_reducers != num_reducers:
            raise MapReduceError(
                f"partitioner targets {partitioner.num_reducers} reducers, job wants {num_reducers}"
            )
        self._job_seq += 1
        job_dir = os.path.join(self.work_dir, f"{job_name}-{self._job_seq:04d}")
        spill_dir = os.path.join(job_dir, "spills")
        output_dir = os.path.join(job_dir, "output")
        os.makedirs(spill_dir, exist_ok=True)
        os.makedirs(output_dir, exist_ok=True)
        counters = JobCounters()

        # -- map phase: one task per split, spill per reducer ----------------
        splits = input_format.get_splits(self.num_mappers)
        for task_id, split in enumerate(splits):
            self._run_map_task(
                task_id, input_format, split, map_fn, partitioner, spill_dir, counters,
                combiner=combiner,
            )

        # -- reduce phase: one task per reducer --------------------------------
        part_files = []
        for reducer in range(num_reducers):
            part_files.append(
                self._run_reduce_task(
                    reducer,
                    len(splits),
                    reduce_fn,
                    spill_dir,
                    output_dir,
                    counters,
                    sort_keys=sort_keys,
                    descending=descending,
                )
            )
        return HadoopJobResult(output_dir=output_dir, part_files=part_files, counters=counters)

    # -- tasks -------------------------------------------------------------------

    def _run_map_task(
        self,
        task_id: int,
        input_format: InputFormat,
        split,
        map_fn: MapFn,
        partitioner: Partitioner,
        spill_dir: str,
        counters: JobCounters,
        combiner: Optional[ReduceFn] = None,
    ) -> None:
        counters.map_tasks += 1
        outputs: list[list[KV]] = [[] for _ in range(partitioner.num_reducers)]

        def emit(k: Any, v: Any) -> None:
            outputs[partitioner(k)].append((k, v))
            counters.map_output_records += 1

        for record in input_format.get_record_reader(split):
            counters.map_input_records += 1
            map_fn(record, emit)
        if combiner is not None:
            # map-side combine: pre-reduce each spill before it hits disk
            for reducer, pairs in enumerate(outputs):
                grouped: dict[Any, list[Any]] = {}
                for k, v in pairs:
                    grouped.setdefault(k, []).append(v)
                combined: list[KV] = []
                c_emit = combined.append
                for k, values in grouped.items():
                    combiner(k, values, lambda ck, cv: c_emit((ck, cv)))
                outputs[reducer] = combined
        for reducer, pairs in enumerate(outputs):
            path = self._spill_path(spill_dir, task_id, reducer)
            payload = pickle.dumps(pairs, protocol=pickle.HIGHEST_PROTOCOL)
            counters.spilled_bytes += len(payload)
            with open(path, "wb") as fh:
                fh.write(payload)

    def _run_reduce_task(
        self,
        reducer: int,
        num_map_tasks: int,
        reduce_fn: ReduceFn,
        spill_dir: str,
        output_dir: str,
        counters: JobCounters,
        sort_keys: bool,
        descending: bool,
    ) -> str:
        counters.reduce_tasks += 1
        # shuffle fetch: pull this reducer's spill from every mapper, in order
        pairs: list[KV] = []
        for task_id in range(num_map_tasks):
            with open(self._spill_path(spill_dir, task_id, reducer), "rb") as fh:
                pairs.extend(pickle.load(fh))
        if sort_keys:
            pairs.sort(key=lambda kv: kv[0], reverse=descending)
        groups: dict[Any, list[Any]] = {}
        for k, v in pairs:
            groups.setdefault(k, []).append(v)
        counters.reduce_input_groups += len(groups)
        out: list[KV] = []

        def emit(k: Any, v: Any) -> None:
            out.append((k, v))
            counters.reduce_output_records += 1

        for k, values in groups.items():
            reduce_fn(k, values, emit)
        path = os.path.join(output_dir, f"part-{reducer:05d}")
        with open(path, "wb") as fh:
            pickle.dump(out, fh, protocol=pickle.HIGHEST_PROTOCOL)
        return path

    @staticmethod
    def _spill_path(spill_dir: str, task_id: int, reducer: int) -> str:
        return os.path.join(spill_dir, f"map-{task_id:04d}-r{reducer:04d}.spill")

    # -- chaining ------------------------------------------------------------------

    def chain_input(self, result: HadoopJobResult) -> InputFormat:
        """The output of one job as the input of the next (job pipelines)."""
        return ListInputFormat(result.read_output())

    def cleanup(self) -> None:
        """Remove all job directories."""
        shutil.rmtree(self.work_dir, ignore_errors=True)
