"""Declarative MapReduce job description.

The PaPar planner turns each workflow operator into one
:class:`MapReduceJob` (the paper: "PaPar will generate the workflow which
will be launched as a sequence of jobs at runtime").  A job is a pure
description — running it requires an engine, so the same job can execute on
the distributed :class:`~repro.mapreduce.engine.MRMPIEngine` or the serial
:class:`~repro.mapreduce.local.LocalEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.errors import MapReduceError
from repro.mapreduce.engine import MapFn, ReduceFn


@dataclass
class MapReduceJob:
    """One map/shuffle/reduce stage of a workflow.

    Attributes
    ----------
    name:
        Operator id from the workflow configuration (e.g. ``"sort"``).
    map_fn / reduce_fn:
        The mapper and reducer bodies.
    partitioner_factory:
        Called per run as ``factory(engine, mapped_kv)`` so that partitioners
        needing global information (sampled sort ranges) can be built
        collectively at runtime.  ``None`` selects hash partitioning.
    num_reducers:
        Reducer count (the workflow's ``num_reducers`` parameter); defaults
        to the communicator size at run time.
    sort_keys / descending:
        Whether reducers see key-sorted input (the ``sort`` operator).
    """

    name: str
    map_fn: MapFn
    reduce_fn: ReduceFn
    partitioner_factory: Optional[Callable[[Any, Sequence[tuple[Any, Any]]], Any]] = None
    num_reducers: Optional[int] = None
    sort_keys: bool = False
    descending: bool = False
    metadata: dict[str, Any] = field(default_factory=dict)

    def run(self, engine: Any, local_items: Sequence[Any]) -> list[tuple[Any, Any]]:
        """Execute this job on ``engine`` over this rank's local items."""
        if hasattr(engine, "charge_job_overhead"):
            engine.charge_job_overhead()
        kv = engine.map(local_items, self.map_fn)
        if self.partitioner_factory is not None:
            partitioner = self.partitioner_factory(engine, kv)
        else:
            from repro.mapreduce.partitioner import HashPartitioner

            nred = self.num_reducers
            if nred is None:
                comm = getattr(engine, "comm", None)
                nred = comm.size if comm is not None else 1
            partitioner = HashPartitioner(nred)
        shuffled = engine.shuffle(kv, partitioner)
        if self.sort_keys:
            shuffled = engine.sort_local(shuffled, descending=self.descending)
        grouped = engine.group(shuffled)
        return engine.reduce(grouped, self.reduce_fn)


def run_pipeline(
    jobs: Sequence[MapReduceJob],
    engine: Any,
    local_items: Sequence[Any],
) -> list[tuple[Any, Any]]:
    """Run jobs back to back, feeding each job's output pairs to the next.

    Matches the paper's runtime: "the jobs are launched one by one following
    the order defined in the workflow configuration file".
    """
    if not jobs:
        raise MapReduceError("pipeline needs at least one job")
    current: Sequence[Any] = local_items
    for job in jobs:
        current = job.run(engine, current)
    return list(current)
