"""Hadoop-style ``InputFormat`` interface (paper Section III-A).

Hadoop asks users to subclass ``InputFormat`` and implement ``getSplits``
(carve the input file into blocks, one per mapper) and ``getRecordReader``
(iterate records of one split).  PaPar *supports* this programmatic interface
but prefers the programming-free input-data configuration file; the
config-driven formats in :mod:`repro.formats` implement this interface, so
both interfaces are the same machinery underneath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.errors import MapReduceError


@dataclass(frozen=True)
class InputSplit:
    """One mapper's slice of the input: ``[start, start + length)`` in units
    meaningful to the format (bytes for binary files, record index for
    in-memory data)."""

    source: Any
    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.length < 0:
            raise MapReduceError(f"invalid split [{self.start}, +{self.length})")


class RecordReader:
    """Iterates the records of one split, yielding mapper inputs."""

    def __iter__(self) -> Iterator[Any]:
        raise NotImplementedError


class InputFormat:
    """Base class: split the input and read records of each split."""

    def get_splits(self, num_splits: int) -> list[InputSplit]:
        raise NotImplementedError

    def get_record_reader(self, split: InputSplit) -> RecordReader:
        raise NotImplementedError

    # -- convenience used by the PaPar runtime ------------------------------

    def records_for_rank(self, rank: int, size: int) -> list[Any]:
        """All records of the split assigned to ``rank`` in a ``size``-way run."""
        splits = self.get_splits(size)
        if len(splits) != size:
            raise MapReduceError(
                f"{type(self).__name__}.get_splits produced {len(splits)} splits for {size} ranks"
            )
        return list(self.get_record_reader(splits[rank]))


class _ListRecordReader(RecordReader):
    def __init__(self, items: Sequence[Any]) -> None:
        self._items = items

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)


class ListInputFormat(InputFormat):
    """In-memory input: the paper requires supporting in-memory repartitioning
    of intermediate data, not only file inputs."""

    def __init__(self, items: Sequence[Any]) -> None:
        self._items = list(items)

    def get_splits(self, num_splits: int) -> list[InputSplit]:
        if num_splits < 1:
            raise MapReduceError(f"num_splits must be >= 1, got {num_splits!r}")
        n = len(self._items)
        base, extra = divmod(n, num_splits)
        splits = []
        start = 0
        for i in range(num_splits):
            length = base + (1 if i < extra else 0)
            splits.append(InputSplit(source=None, start=start, length=length))
            start += length
        return splits

    def get_record_reader(self, split: InputSplit) -> RecordReader:
        return _ListRecordReader(self._items[split.start : split.start + split.length])
