"""Shuffle partitioners: decide which reducer owns each key.

Three kinds appear in the paper's workflows:

* hash partitioning — the MapReduce default (``group`` jobs, Figure 11 step 1);
* range partitioning — for ``sort`` jobs, with ranges derived from sampling
  (Figure 9 step 1, Section III-D "Data Sampling");
* explicit partitioning — the ``distribute`` job simply uses the target
  partition id as the temporary reduce-key (Figure 9 step 4, Figure 11 step 6).
"""

from __future__ import annotations

import bisect
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import MapReduceError


class Partitioner:
    """Maps a key to a reducer index in ``[0, num_reducers)``."""

    def __init__(self, num_reducers: int) -> None:
        if num_reducers < 1:
            raise MapReduceError(f"num_reducers must be >= 1, got {num_reducers!r}")
        self.num_reducers = num_reducers

    def __call__(self, key: Any) -> int:
        raise NotImplementedError

    def partition_array(self, keys: np.ndarray) -> np.ndarray:
        """Reducer index per key, vectorized where the subclass allows.

        The base implementation loops; subclasses override with array
        kernels.  Every override must agree elementwise with ``__call__``
        (the columnar fast path's correctness contract, property-tested).
        """
        return np.fromiter(
            (self(k) for k in keys), dtype=np.int64, count=len(keys)
        )


def stable_hash(key: Any) -> int:
    """A process-independent hash (Python's ``hash`` is salted per process).

    Numpy integers hash like Python ints so the scalar and columnar
    (:func:`stable_hash_array`) paths agree on every element.
    """
    if isinstance(key, (int, np.integer)):
        return int(key) & 0x7FFFFFFF
    if isinstance(key, bytes):
        return zlib.crc32(key)
    return zlib.crc32(repr(key).encode("utf-8"))


def stable_hash_array(keys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`stable_hash` over a key array.

    Integer dtypes mask in one array op; bytes dtypes crc32 per element
    (still one pass, no tuple boxing).  Matches the scalar function exactly
    for every dtype — numpy integers hash by bit pattern like Python ints,
    and ``np.bytes_`` elements are ``bytes`` subclasses.
    """
    keys = np.asarray(keys)
    if keys.dtype.kind in "iu":
        return keys.astype(np.int64, copy=False) & 0x7FFFFFFF
    if keys.dtype.kind == "S":
        return np.fromiter(
            (zlib.crc32(k) for k in keys), dtype=np.int64, count=len(keys)
        )
    return np.fromiter(
        (stable_hash(k) for k in keys.tolist()), dtype=np.int64, count=len(keys)
    )


class HashPartitioner(Partitioner):
    """The MapReduce default: ``stable_hash(key) % num_reducers``."""

    def __call__(self, key: Any) -> int:
        return stable_hash(key) % self.num_reducers

    def partition_array(self, keys: np.ndarray) -> np.ndarray:
        return stable_hash_array(keys) % self.num_reducers


@dataclass(frozen=True)
class _Boundary:
    """Marker type documenting that boundaries are inclusive-upper splits."""


class RangePartitioner(Partitioner):
    """Order-preserving partitioner over sampled split points.

    ``boundaries`` holds ``num_reducers - 1`` ascending split keys; reducer
    ``i`` receives keys in ``(boundaries[i-1], boundaries[i]]``-style ranges
    (``bisect_left``, so a key equal to a boundary goes to that boundary's
    bucket).  Produced by :func:`repro.mapreduce.sampling.sample_key_ranges`.
    """

    def __init__(self, boundaries: Sequence[Any], num_reducers: int) -> None:
        super().__init__(num_reducers)
        if len(boundaries) != num_reducers - 1:
            raise MapReduceError(
                f"need {num_reducers - 1} boundaries for {num_reducers} reducers, "
                f"got {len(boundaries)}"
            )
        bl = list(boundaries)
        if any(bl[i] > bl[i + 1] for i in range(len(bl) - 1)):
            raise MapReduceError("range boundaries must be ascending")
        self.boundaries = bl

    def __call__(self, key: Any) -> int:
        return bisect.bisect_left(self.boundaries, key)

    def partition_array(self, keys: np.ndarray) -> np.ndarray:
        # bisect_left over every key at once
        return np.searchsorted(np.asarray(self.boundaries), keys, side="left")


class ExplicitPartitioner(Partitioner):
    """The key *is* the reducer id (the ``distribute`` job's reduce-key)."""

    def __call__(self, key: Any) -> int:
        reducer = int(key)
        if not (0 <= reducer < self.num_reducers):
            raise MapReduceError(
                f"explicit reduce-key {key!r} out of range for {self.num_reducers} reducers"
            )
        return reducer

    def partition_array(self, keys: np.ndarray) -> np.ndarray:
        reducers = np.asarray(keys).astype(np.int64, copy=False)
        if len(reducers) and (reducers.min() < 0 or reducers.max() >= self.num_reducers):
            bad = reducers[(reducers < 0) | (reducers >= self.num_reducers)][0]
            raise MapReduceError(
                f"explicit reduce-key {bad!r} out of range for {self.num_reducers} reducers"
            )
        return reducers


class FnPartitioner(Partitioner):
    """Wrap an arbitrary ``key -> reducer`` callable."""

    def __init__(self, fn: Callable[[Any], int], num_reducers: int) -> None:
        super().__init__(num_reducers)
        self._fn = fn

    def __call__(self, key: Any) -> int:
        reducer = self._fn(key)
        if not (0 <= reducer < self.num_reducers):
            raise MapReduceError(f"partitioner returned out-of-range reducer {reducer!r}")
        return reducer
