"""A GAS (gather-apply-scatter) execution engine over partitioned graphs.

PowerLyra integrates its partitioning with GraphLab's GAS engine; Figure 14
measures PageRank execution time under the three cuts.  This engine executes
vertex programs *correctly* for any edge placement (results are identical
across cuts — only costs differ) and accounts two costs per superstep:

* **compute** — the busiest partition's local edge work (partitions run in
  parallel, one per rank);
* **communication** — mirror/master synchronization volume, which is a
  direct function of the placement's replication factor.

Virtual time comes from the shared :class:`~repro.cluster.ClusterModel`, so
Figure 14's 8-node vs 16-node comparisons use the same machinery as the
partitioning-time figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.model import ClusterModel
from repro.errors import PaParError
from repro.graph.partition import PartitionedGraph

#: modeled per-edge gather/scatter cost on one core, seconds
EDGE_COST_S = 8e-9
#: per-superstep engine overhead (scheduling, barrier), seconds
SUPERSTEP_OVERHEAD_S = 150e-6


@dataclass
class ExecutionReport:
    """Costs of one vertex-program execution."""

    iterations: int = 0
    elapsed: float = 0.0
    comm_bytes: int = 0
    max_partition_edges: int = 0
    extra: dict = field(default_factory=dict)


class GASEngine:
    """Executes vertex programs over one :class:`PartitionedGraph`."""

    def __init__(self, pg: PartitionedGraph, cluster: ClusterModel | None = None):
        self.pg = pg
        self.cluster = cluster
        g = pg.graph
        self._per_part = [
            (g.src[pg.edge_owner == p], g.dst[pg.edge_owner == p])
            for p in range(pg.num_partitions)
        ]
        self._iter_comm_bytes = pg.comm_bytes_per_iteration()
        self._edges_per_part = pg.edges_per_partition()

    # -- cost model -----------------------------------------------------------

    def _iteration_time(self) -> float:
        """Modeled wall time of one superstep on the attached cluster."""
        if self.cluster is None:
            return 0.0
        busiest = int(self._edges_per_part.max()) if len(self._edges_per_part) else 0
        compute = self.cluster.compute(busiest * EDGE_COST_S)
        # mirrors sync over the network; volume spread across nodes
        per_node_bytes = self._iter_comm_bytes / max(self.cluster.num_nodes, 1)
        comm = self.cluster.network.transfer_time(int(per_node_bytes), same_node=False)
        return compute + comm + SUPERSTEP_OVERHEAD_S

    # -- algorithms -------------------------------------------------------------

    def pagerank(
        self, iterations: int = 10, damping: float = 0.85
    ) -> tuple[np.ndarray, ExecutionReport]:
        """PageRank by synchronous GAS supersteps.

        Every partition gathers rank/out-degree contributions along its local
        edges; partial accumulators are combined across partitions (the
        mirror -> master sync the comm model charges for).
        """
        if iterations < 1:
            raise PaParError(f"iterations must be >= 1, got {iterations!r}")
        g = self.pg.graph
        n = g.num_vertices
        if n == 0:
            return np.empty(0), ExecutionReport()
        out_deg = np.maximum(g.out_degrees(), 1)
        ranks = np.full(n, 1.0 / n)
        report = ExecutionReport(max_partition_edges=int(self._edges_per_part.max()))
        for _ in range(iterations):
            acc = np.zeros(n)
            contrib = ranks / out_deg
            for src, dst in self._per_part:
                # gather: each partition accumulates over its local edges
                np.add.at(acc, dst, contrib[src])
            # apply: combine partial accumulators (global sync point)
            ranks = (1.0 - damping) / n + damping * acc
            report.iterations += 1
            report.comm_bytes += self._iter_comm_bytes
            report.elapsed += self._iteration_time()
        return ranks, report

    def connected_components(self, max_iterations: int = 200) -> tuple[np.ndarray, ExecutionReport]:
        """Label propagation over the undirected view, to fixpoint."""
        g = self.pg.graph
        n = g.num_vertices
        labels = np.arange(n, dtype=np.int64)
        report = ExecutionReport(
            max_partition_edges=int(self._edges_per_part.max()) if n else 0
        )
        for _ in range(max_iterations):
            new_labels = labels.copy()
            for src, dst in self._per_part:
                np.minimum.at(new_labels, dst, labels[src])
                np.minimum.at(new_labels, src, labels[dst])
            report.iterations += 1
            report.comm_bytes += self._iter_comm_bytes
            report.elapsed += self._iteration_time()
            if np.array_equal(new_labels, labels):
                break
            labels = new_labels
        return labels, report


def pagerank_reference(graph, iterations: int = 10, damping: float = 0.85) -> np.ndarray:
    """Unpartitioned power-iteration PageRank (correctness oracle)."""
    n = graph.num_vertices
    if n == 0:
        return np.empty(0)
    out_deg = np.maximum(graph.out_degrees(), 1)
    ranks = np.full(n, 1.0 / n)
    for _ in range(iterations):
        acc = np.zeros(n)
        np.add.at(acc, graph.dst, (ranks / out_deg)[graph.src])
        ranks = (1.0 - damping) / n + damping * acc
    return ranks
