"""Single-source shortest paths on the GAS engine.

A third vertex program for the PowerLyra substrate (the paper cites
"PageRank, Connected Components, etc." as the algorithms the hybrid
partitioning accelerates).  Synchronous Bellman-Ford supersteps over the
partitioned edge sets: each superstep relaxes every partition's local edges
against the current distance vector and combines the per-partition minima
(the same mirror synchronization pattern PageRank uses, so the cut-dependent
cost model carries over unchanged).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import PaParError
from repro.graph.gas import ExecutionReport
from repro.graph.partition import PartitionedGraph

INF = np.inf


def sssp(
    pg: PartitionedGraph,
    source: int,
    weights: Optional[np.ndarray] = None,
    max_iterations: int = 10_000,
) -> tuple[np.ndarray, ExecutionReport]:
    """Distances from ``source`` along directed edges (Bellman-Ford).

    ``weights`` defaults to unit edge weights (hop counts); negative weights
    are rejected (the synchronous relaxation assumes non-negative costs).
    """
    g = pg.graph
    if not (0 <= source < g.num_vertices):
        raise PaParError(f"source {source} out of range for {g.num_vertices} vertices")
    if weights is None:
        weights = np.ones(g.num_edges)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (g.num_edges,):
            raise PaParError("weights must have one entry per edge")
        if len(weights) and weights.min() < 0:
            raise PaParError("negative edge weights are not supported")

    per_part = [
        (g.src[pg.edge_owner == p], g.dst[pg.edge_owner == p], weights[pg.edge_owner == p])
        for p in range(pg.num_partitions)
    ]
    dist = np.full(g.num_vertices, INF)
    dist[source] = 0.0
    report = ExecutionReport()
    comm_per_iter = pg.comm_bytes_per_iteration()
    for _ in range(max_iterations):
        new_dist = dist.copy()
        for src, dst, w in per_part:
            candidate = dist[src] + w
            np.minimum.at(new_dist, dst, candidate)
        report.iterations += 1
        report.comm_bytes += comm_per_iter
        if np.array_equal(
            np.nan_to_num(new_dist, posinf=-1.0), np.nan_to_num(dist, posinf=-1.0)
        ):
            break
        dist = new_dist
    return dist, report
