"""Distributed GAS execution on the simulated MPI runtime.

Where :class:`~repro.graph.gas.GASEngine` executes the partitions in one
process and *models* the mirror synchronization, this driver runs one rank
per partition and performs the synchronization with real messages: each
superstep every rank computes partial gather accumulators over its local
edges and combines them with a vector ``allreduce``.  The result must equal
the serial engine and the unpartitioned reference (tested), and the actual
bytes moved validate the replication-based communication model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.model import ClusterModel
from repro.errors import PaParError
from repro.graph.gas import EDGE_COST_S
from repro.graph.partition import PartitionedGraph
from repro.mpi import SUM, run_mpi
from repro.mpi.comm import Communicator


@dataclass
class DistributedPageRankResult:
    ranks: np.ndarray
    iterations: int
    elapsed: float
    bytes_moved: int


def _pagerank_rank_program(
    comm: Communicator,
    src_parts: list[np.ndarray],
    dst_parts: list[np.ndarray],
    num_vertices: int,
    out_deg: np.ndarray,
    iterations: int,
    damping: float,
) -> np.ndarray:
    src = src_parts[comm.rank]
    dst = dst_parts[comm.rank]
    ranks = np.full(num_vertices, 1.0 / num_vertices)
    for _ in range(iterations):
        acc = np.zeros(num_vertices)
        contrib = ranks / out_deg
        np.add.at(acc, dst, contrib[src])
        if comm.cluster is not None:
            comm.charge_compute(comm.cluster.compute(len(src) * EDGE_COST_S))
        # mirror -> master synchronization: combine partial accumulators
        # (buffer-path Allreduce: the zero-copy fast path of the runtime)
        acc = comm.Allreduce(acc, SUM)
        ranks = (1.0 - damping) / num_vertices + damping * acc
    return ranks


def distributed_pagerank(
    pg: PartitionedGraph,
    iterations: int = 10,
    damping: float = 0.85,
    cluster: Optional[ClusterModel] = None,
) -> DistributedPageRankResult:
    """PageRank with one MPI rank per partition; real message traffic."""
    if iterations < 1:
        raise PaParError(f"iterations must be >= 1, got {iterations!r}")
    if cluster is not None and cluster.size != pg.num_partitions:
        raise PaParError(
            f"cluster has {cluster.size} ranks but the graph has {pg.num_partitions} partitions"
        )
    g = pg.graph
    src_parts = [g.src[pg.edge_owner == p] for p in range(pg.num_partitions)]
    dst_parts = [g.dst[pg.edge_owner == p] for p in range(pg.num_partitions)]
    out_deg = np.maximum(g.out_degrees(), 1)
    run = run_mpi(
        _pagerank_rank_program,
        pg.num_partitions,
        cluster=cluster,
        args=(src_parts, dst_parts, g.num_vertices, out_deg, iterations, damping),
    )
    return DistributedPageRankResult(
        ranks=run.results[0],
        iterations=iterations,
        elapsed=run.elapsed,
        bytes_moved=run.bytes_moved,
    )
