"""Graph partitioning strategies: edge-cut, vertex-cut, hybrid-cut.

The paper's Figure 14 compares three placements (labels as in Section IV-C):

* **edge-cut** — every edge is placed independently (hash of the edge), so
  a vertex's edges — in and out — scatter across partitions (Figure 2 draws
  it cutting straight through a vertex's edge list).  Both endpoints of
  every edge replicate, the worst case on power-law graphs.
* **vertex-cut** — "distributes a vertex with all its in-edges to a
  partition": every edge is stored at its *target* vertex's partition.
  Low-degree-friendly but a hub drags all its in-edges onto one partition.
* **hybrid-cut** (PowerLyra) — vertex-cut for low-in-degree targets, and
  the in-edges of high-degree targets spread by *source* (Figure 2).

Each strategy yields an edge -> partition assignment; replication factor and
balance metrics are computed uniformly from that assignment, which is what
the GAS engine charges communication for.

Two assigners are provided for the group-to-partition choice: ``hash``
(PowerLyra's runtime behaviour) and ``cyclic`` (the deterministic
permutation-matrix formalization PaPar generates — Figure 11).  With
``cyclic`` the native implementation reproduces the PaPar-generated
partitions bit-for-bit, which is how the paper's "same partitions" check is
reproduced in ``tests/integration``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import PaParError
from repro.graph.graph import Graph


@dataclass
class PartitionedGraph:
    """An edge -> partition assignment over a graph."""

    graph: Graph
    num_partitions: int
    edge_owner: np.ndarray  # int64, one partition id per edge
    strategy: str = "unknown"

    def __post_init__(self) -> None:
        if len(self.edge_owner) != self.graph.num_edges:
            raise PaParError("edge_owner must assign every edge")
        if len(self.edge_owner) and (
            self.edge_owner.min() < 0 or self.edge_owner.max() >= self.num_partitions
        ):
            raise PaParError("edge_owner contains out-of-range partition ids")

    # -- structure ----------------------------------------------------------

    def edges_per_partition(self) -> np.ndarray:
        """Edge count of every partition."""
        return np.bincount(self.edge_owner, minlength=self.num_partitions).astype(np.int64)

    def partition(self, p: int) -> Graph:
        """Subgraph held by partition ``p``."""
        return self.graph.select(self.edge_owner == p)

    # -- replication metrics ------------------------------------------------------

    def vertex_replicas(self) -> np.ndarray:
        """Number of distinct partitions each vertex appears in (as either
        endpoint of a local edge).  Isolated vertices count one replica
        (their master copy)."""
        v = self.graph.num_vertices
        pairs = np.concatenate(
            [
                self.graph.src * np.int64(self.num_partitions) + self.edge_owner,
                self.graph.dst * np.int64(self.num_partitions) + self.edge_owner,
            ]
        )
        unique = np.unique(pairs)
        counts = np.bincount((unique // self.num_partitions).astype(np.int64), minlength=v)
        return np.maximum(counts, 1).astype(np.int64)

    def replication_factor(self) -> float:
        """Average replicas per vertex — the comm-cost driver of GAS engines."""
        if self.graph.num_vertices == 0:
            return 0.0
        return float(self.vertex_replicas().mean())

    def edge_balance(self) -> float:
        """Max/mean ratio of per-partition edge counts (compute balance)."""
        counts = self.edges_per_partition().astype(np.float64)
        if counts.sum() == 0:
            return 1.0
        return float(counts.max() / counts.mean())

    def comm_bytes_per_iteration(self, value_bytes: int = 8) -> int:
        """GAS sync volume per superstep: every mirror exchanges its
        accumulator with the master and receives the new value back."""
        mirrors = int(self.vertex_replicas().sum()) - self.graph.num_vertices
        return 2 * mirrors * value_bytes


def _hash_assign(ids: np.ndarray, num_partitions: int) -> np.ndarray:
    """Vectorized stable hash of vertex ids onto partitions."""
    # splitmix-style mix keeps low-bit-correlated ids from mapping trivially
    x = ids.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    x = x ^ (x >> np.uint64(31))
    return (x % np.uint64(num_partitions)).astype(np.int64)


def _cyclic_assign(ids: np.ndarray, num_partitions: int) -> np.ndarray:
    """The PaPar formalization: deal distinct keys round-robin in ascending
    key order (the cyclic permutation applied to the packed group stream)."""
    unique = np.unique(ids)
    rank = np.searchsorted(unique, ids)
    return (rank % num_partitions).astype(np.int64)


_ASSIGNERS: dict[str, Callable[[np.ndarray, int], np.ndarray]] = {
    "hash": _hash_assign,
    "cyclic": _cyclic_assign,
}


def _check(num_partitions: int, assigner: str) -> Callable[[np.ndarray, int], np.ndarray]:
    if num_partitions < 1:
        raise PaParError(f"num_partitions must be >= 1, got {num_partitions!r}")
    if assigner not in _ASSIGNERS:
        raise PaParError(f"unknown assigner {assigner!r}; known: {sorted(_ASSIGNERS)}")
    return _ASSIGNERS[assigner]


def edge_cut(graph: Graph, num_partitions: int, assigner: str = "hash") -> PartitionedGraph:
    """Each edge placed independently by a hash of the edge itself."""
    assign = _check(num_partitions, assigner)
    # mix both endpoints so parallel structure does not bias the placement
    edge_ids = graph.src * np.int64(0x1F123BB5) + graph.dst
    owner = assign(edge_ids, num_partitions)
    return PartitionedGraph(graph, num_partitions, owner, strategy="edge-cut")


def vertex_cut(graph: Graph, num_partitions: int, assigner: str = "hash") -> PartitionedGraph:
    """Each vertex with all its in-edges on one partition."""
    assign = _check(num_partitions, assigner)
    owner = assign(graph.dst, num_partitions)
    return PartitionedGraph(graph, num_partitions, owner, strategy="vertex-cut")


def hybrid_cut(
    graph: Graph,
    num_partitions: int,
    threshold: int = 200,
    assigner: str = "hash",
) -> PartitionedGraph:
    """PowerLyra's hybrid-cut (Figure 2).

    In-edges of a low-in-degree vertex stay together (placed by target);
    in-edges of a high-in-degree vertex spread (placed by source).
    """
    if threshold < 0:
        raise PaParError(f"threshold must be >= 0, got {threshold!r}")
    assign = _check(num_partitions, assigner)
    indeg = graph.in_degrees()
    high = indeg[graph.dst] >= threshold
    owner = np.where(
        high,
        assign(graph.src, num_partitions),
        assign(graph.dst, num_partitions),
    )
    return PartitionedGraph(graph, num_partitions, owner, strategy="hybrid-cut")


STRATEGIES = {
    "edge-cut": edge_cut,
    "vertex-cut": vertex_cut,
    "hybrid-cut": hybrid_cut,
}


def partition_by(
    strategy: str, graph: Graph, num_partitions: int, **kwargs
) -> PartitionedGraph:
    """Dispatch on the Figure 14 strategy names."""
    if strategy not in STRATEGIES:
        raise PaParError(f"unknown strategy {strategy!r}; known: {sorted(STRATEGIES)}")
    return STRATEGIES[strategy](graph, num_partitions, **kwargs)
