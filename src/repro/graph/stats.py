"""Graph statistics: the Table II columns and power-law diagnostics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph


@dataclass(frozen=True)
class GraphStats:
    """One Table II row."""

    name: str
    vertices: int
    edges: int
    type: str
    triangles: int

    def as_row(self) -> tuple:
        return (self.name, self.vertices, self.edges, self.type, self.triangles)


def count_triangles(graph: Graph) -> int:
    """Undirected triangle count via trace(A^3)/6 on the symmetrized graph.

    Matches SNAP's convention for the Table II "Triangles" column (triangles
    are counted on the underlying undirected simple graph).
    """
    a = graph.adjacency()
    sym = a + a.T
    sym.data[:] = 1.0  # simple graph: collapse reciprocal edges
    sym.setdiag(0)
    sym.eliminate_zeros()
    a2 = sym @ sym
    # trace(A^3) without forming A^3: sum over shared edges
    tri = (a2.multiply(sym)).sum()
    return int(round(tri / 6.0))


def compute_stats(graph: Graph, name: str) -> GraphStats:
    """All Table II columns for one graph."""
    return GraphStats(
        name=name,
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        type="Directed",
        triangles=count_triangles(graph),
    )


def degree_tail_ratio(graph: Graph, percentile: float = 99.0) -> float:
    """How heavy the in-degree tail is: p-th percentile / mean degree."""
    deg = graph.in_degrees().astype(np.float64)
    if deg.mean() == 0:
        return 0.0
    return float(np.percentile(deg, percentile) / deg.mean())


def is_power_law_like(graph: Graph, min_tail_ratio: float = 3.0) -> bool:
    """Cheap power-law check: a heavy tail plus many low-degree vertices."""
    deg = graph.in_degrees()
    if len(deg) == 0:
        return False
    median = np.median(deg)
    return degree_tail_ratio(graph) >= min_tail_ratio and median <= max(deg.mean(), 1.0)
