"""The native PowerLyra baseline: reference partitioner and timing model.

Two roles (paper Section IV-C, Figure 15):

1. :func:`papar_equivalent_hybrid_cut` — an *independent* straight-line
   reimplementation of the Figure 11 hybrid-cut semantics (group by
   in-vertex, threshold split, per-stream cyclic dealing).  The integration
   suite checks the PaPar-generated partitioner emits exactly these
   partitions — the paper's correctness claim ("PaPar can produce the same
   partitions as the driving applications").

2. :class:`PartitionerTimeModel` — analytic virtual-time models of both
   partitioners at full Table II scale.  The model encodes the paper's own
   explanation of Figure 15:

   * PowerLyra's single-node path is faster (NUMA-aware C++,
     ``native_compute_scale``), so it wins on the small/medium graphs;
   * its shuffle runs over kernel sockets on Ethernet while PaPar/MR-MPI
     uses RDMA on InfiniBand, so PaPar wins when communication dominates;
   * PowerLyra's *dynamic* low-degree scoring tables are sized by the
     full vertex set and stop fitting in cache for LiveJournal-scale
     graphs (``llc_bytes``), plus the per-vertex scoring overhead itself —
     which is why PaPar overtakes it on LiveJournal (paper: 1.2x);
   * PowerLyra's socket mesh costs per-node setup that grows with the node
     count, which is why it does not scale on the small Google graph.

   Constants are calibrated so the published ratios come out (documented in
   EXPERIMENTS.md); the *mechanisms* — not the constants — are the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PaParError
from repro.graph.graph import Graph
from repro.policies.permutation import cyclic_permutation_indices, partition_counts


def papar_equivalent_hybrid_cut(
    graph: Graph, num_partitions: int, threshold: int
) -> list[np.ndarray]:
    """Hybrid-cut partitions exactly as the PaPar workflow produces them.

    Returns one ``(k, 3)`` int64 array per partition with rows
    ``(vertex_a, vertex_b, indegree)`` — the unpacked output format of the
    Figure 10 workflow (the count add-on's attribute included).
    """
    if num_partitions < 1:
        raise PaParError(f"num_partitions must be >= 1, got {num_partitions!r}")
    indeg = graph.in_degrees()
    # group edges by target, ascending target id, stable within group
    order = np.argsort(graph.dst, kind="stable")
    src, dst = graph.src[order], graph.dst[order]
    deg = indeg[dst]
    rows = np.column_stack((src, dst, deg)).astype(np.int64)

    high_mask = deg >= threshold
    high_rows = rows[high_mask]
    low_rows = rows[~high_mask]

    parts: list[list[np.ndarray]] = [[] for _ in range(num_partitions)]

    # high-degree stream: individual edges dealt cyclically by position
    perm = cyclic_permutation_indices(len(high_rows), num_partitions)
    counts = partition_counts(len(high_rows), num_partitions, "cyclic")
    offsets = np.concatenate(([0], np.cumsum(counts)))
    for p in range(num_partitions):
        parts[p].append(high_rows[perm[offsets[p] : offsets[p + 1]]])

    # low-degree stream: whole vertex groups dealt cyclically by group position
    if len(low_rows):
        group_keys, group_starts = np.unique(low_rows[:, 1], return_index=True)
        group_bounds = np.concatenate((np.sort(group_starts), [len(low_rows)]))
        n_groups = len(group_keys)
        perm_g = cyclic_permutation_indices(n_groups, num_partitions)
        counts_g = partition_counts(n_groups, num_partitions, "cyclic")
        offs_g = np.concatenate(([0], np.cumsum(counts_g)))
        for p in range(num_partitions):
            for g in perm_g[offs_g[p] : offs_g[p + 1]]:
                parts[p].append(low_rows[group_bounds[g] : group_bounds[g + 1]])

    return [
        np.concatenate(chunks) if chunks else np.empty((0, 3), dtype=np.int64)
        for chunks in parts
    ]


@dataclass(frozen=True)
class PartitionerTimeModel:
    """Analytic hybrid-cut partitioning time for both systems.

    All times in seconds for a graph of ``V`` vertices and ``E`` edges on
    ``num_nodes`` nodes (16 cores each, the Table II testbed node).
    """

    threads_per_node: int = 16
    parallel_efficiency: float = 0.85
    edge_bytes: int = 16
    #: per-edge partitioning work (hash, route, copy) through MR-MPI
    papar_edge_cost_s: float = 60e-9
    #: NUMA-aware native path is faster per edge
    native_compute_scale: float = 0.35
    #: effective point-to-point bandwidths (bytes/s)
    ib_bandwidth: float = 3.6e9
    eth_bandwidth: float = 1.06e9
    #: native pipeline overlaps compute with its socket shuffle
    native_comm_overlap: float = 2.4e9 / 1.06e9
    #: PaPar shuffles twice (group job + distribute job); native routes ~1.2x
    papar_shuffle_rounds: float = 2.0
    native_shuffle_rounds: float = 1.2
    #: flat framework costs and per-node coordination costs
    papar_flat_s: float = 6e-3
    papar_per_node_s: float = 0.15e-3
    native_flat_s: float = 1e-3
    native_per_node_s: float = 0.25e-3
    #: dynamic low-degree scoring: per-vertex work on each node
    native_score_per_vertex_s: float = 48e-9
    #: last-level cache capacity for the native scoring/degree tables
    llc_bytes: float = 12e6

    def _effective_threads(self) -> float:
        return self.threads_per_node * self.parallel_efficiency

    def _comm_time(self, num_edges: int, num_nodes: int, bandwidth: float, rounds: float) -> float:
        if num_nodes <= 1:
            return 0.0
        per_node_bytes = num_edges * self.edge_bytes / num_nodes
        cross_fraction = 1.0 - 1.0 / num_nodes
        return rounds * per_node_bytes * cross_fraction / bandwidth

    def papar_time(self, num_vertices: int, num_edges: int, num_nodes: int) -> float:
        """PaPar on MR-MPI over InfiniBand RDMA."""
        compute = (
            num_edges / num_nodes * self.papar_edge_cost_s / self._effective_threads()
        )
        comm = self._comm_time(num_edges, num_nodes, self.ib_bandwidth, self.papar_shuffle_rounds)
        return compute + comm + self.papar_flat_s + self.papar_per_node_s * num_nodes

    def native_time(self, num_vertices: int, num_edges: int, num_nodes: int) -> float:
        """Native PowerLyra over sockets on Ethernet."""
        table_bytes = num_vertices * 8.0
        cache_factor = 1.0 + max(0.0, (table_bytes - self.llc_bytes) / self.llc_bytes)
        compute = (
            num_edges
            / num_nodes
            * self.papar_edge_cost_s
            * self.native_compute_scale
            * cache_factor
            / self._effective_threads()
        )
        comm = self._comm_time(
            num_edges,
            num_nodes,
            self.eth_bandwidth * self.native_comm_overlap,
            self.native_shuffle_rounds,
        )
        scoring = num_vertices * self.native_score_per_vertex_s / self._effective_threads()
        return (
            compute
            + comm
            + scoring
            + self.native_flat_s
            + self.native_per_node_s * num_nodes
        )

    def speedup_papar_over_native(
        self, num_vertices: int, num_edges: int, num_nodes: int
    ) -> float:
        """> 1 when PaPar's generated partitioner is faster."""
        return self.native_time(num_vertices, num_edges, num_nodes) / self.papar_time(
            num_vertices, num_edges, num_nodes
        )
