"""Distributed graph ingress: each rank loads its own byte-range split.

PowerLyra's ingress has every node read its slice of the edge-list file and
route edges to their owners.  This module reproduces the loading half on the
simulated MPI runtime using the Hadoop byte-range protocol
(:class:`~repro.formats.text.ByteRangeTextInputFormat`): ranks read disjoint
byte ranges, snap to line boundaries, and an ``Allgatherv`` assembles the
consistent global edge list (or each rank keeps only the edges a
:class:`~repro.graph.partition.PartitionedGraph`-style assigner maps to it).
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.errors import PaParError
from repro.formats.records import EDGE_LIST_SCHEMA, RecordSchema
from repro.formats.text import ByteRangeTextInputFormat
from repro.graph.graph import Graph
from repro.mpi import run_mpi
from repro.mpi.comm import Communicator

PathLike = Union[str, os.PathLike]


def _load_rank_program(
    comm: Communicator, path: str, schema: RecordSchema
) -> np.ndarray:
    """One rank: read the owned byte range, gather everyone's edges."""
    fmt = ByteRangeTextInputFormat(path, schema)
    split = fmt.get_splits(comm.size)[comm.rank]
    rows = list(fmt.get_record_reader(split))
    local = np.array(rows, dtype=np.int64).reshape(-1, 2) if rows else np.empty(
        (0, 2), dtype=np.int64
    )
    flat, counts = comm.Allgatherv(local.reshape(-1))
    return flat.reshape(-1, 2)


def load_graph_distributed(
    path: PathLike,
    num_ranks: int = 4,
    schema: Optional[RecordSchema] = None,
    num_vertices: Optional[int] = None,
) -> Graph:
    """Load an edge-list file with ``num_ranks`` parallel readers.

    Every rank ends up with the same edge array (replicated ingress); the
    result equals a serial read of the file, in file order.
    """
    if num_ranks < 1:
        raise PaParError(f"num_ranks must be >= 1, got {num_ranks!r}")
    schema = schema or EDGE_LIST_SCHEMA
    run = run_mpi(
        _load_rank_program, num_ranks, args=(os.fspath(path), schema)
    )
    edges = run.results[0]
    return Graph(edges[:, 0], edges[:, 1], num_vertices=num_vertices)
