"""Greedy (Aweto/PowerGraph-style) vertex-cut partitioning.

PowerLyra's evaluation compares against PowerGraph's *greedy* (oblivious)
vertex-cut: edges are placed one by one, each on the partition that
minimizes new vertex replication, with load as the tie-breaker.  The
heuristic's replication factor sits well below random edge placement, at
the cost of a sequential placement pass — a useful extra baseline for the
replication experiments.

Rules (PowerGraph, Gonzalez et al., OSDI 2012), for edge ``(u, v)`` with
partition sets ``A(u)``, ``A(v)``:

1. if ``A(u) ∩ A(v)`` is non-empty, place the edge in the least-loaded
   common partition;
2. else if both sets are non-empty, place it in the least-loaded partition
   of the higher-degree-remaining endpoint's set;
3. else if one set is non-empty, use that endpoint's least-loaded partition;
4. else use the globally least-loaded partition.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PaParError
from repro.graph.graph import Graph
from repro.graph.partition import PartitionedGraph


def greedy_vertex_cut(graph: Graph, num_partitions: int) -> PartitionedGraph:
    """Oblivious greedy edge placement minimizing replication."""
    if num_partitions < 1:
        raise PaParError(f"num_partitions must be >= 1, got {num_partitions!r}")
    n_edges = graph.num_edges
    owner = np.empty(n_edges, dtype=np.int64)
    load = np.zeros(num_partitions, dtype=np.int64)
    placed: list[set[int]] = [set() for _ in range(graph.num_vertices)]
    # remaining degree guides rule 2 (favour the endpoint with more edges
    # still to come, so its replica set stays small)
    remaining = np.bincount(graph.src, minlength=graph.num_vertices) + np.bincount(
        graph.dst, minlength=graph.num_vertices
    )

    for e in range(n_edges):
        u, v = int(graph.src[e]), int(graph.dst[e])
        a_u, a_v = placed[u], placed[v]
        common = a_u & a_v
        if common:
            p = min(common, key=lambda x: (load[x], x))
        elif a_u and a_v:
            pick_from = a_u if remaining[u] >= remaining[v] else a_v
            p = min(pick_from, key=lambda x: (load[x], x))
        elif a_u or a_v:
            p = min(a_u or a_v, key=lambda x: (load[x], x))
        else:
            p = int(np.argmin(load))
        owner[e] = p
        load[p] += 1
        a_u.add(p)
        a_v.add(p)
        remaining[u] -= 1
        remaining[v] -= 1

    return PartitionedGraph(graph, num_partitions, owner, strategy="greedy-vertex-cut")
