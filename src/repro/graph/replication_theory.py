"""Analytic replication-factor estimates (PowerGraph/PowerLyra theory).

For *random* edge placement over ``P`` partitions, a vertex of degree ``d``
appears in a partition with probability ``1 - (1 - 1/P)^d``, so its expected
replica count is ``P * (1 - (1 - 1/P)^d)`` (clamped to at least one master
copy).  Summing over vertices gives the expected replication factor — the
quantity the measured :meth:`~repro.graph.partition.PartitionedGraph.
replication_factor` should approach for the ``edge-cut`` (random per-edge)
strategy.  The same machinery bounds the hybrid-cut: its low-degree side
contributes ~1 replica per vertex on the gather side, which is exactly why
hybrid wins on power-law graphs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PaParError
from repro.graph.graph import Graph


def expected_random_replication(graph: Graph, num_partitions: int) -> float:
    """Expected replication factor of uniform random edge placement."""
    if num_partitions < 1:
        raise PaParError(f"num_partitions must be >= 1, got {num_partitions!r}")
    if graph.num_vertices == 0:
        return 0.0
    degree = (graph.in_degrees() + graph.out_degrees()).astype(np.float64)
    p = float(num_partitions)
    expected = p * (1.0 - np.power(1.0 - 1.0 / p, degree))
    return float(np.maximum(expected, 1.0).mean())


def hybrid_low_side_bound(graph: Graph, threshold: int) -> float:
    """Fraction of vertices whose in-edges the hybrid-cut keeps unreplicated.

    Every vertex with in-degree below the threshold contributes exactly one
    gather-side replica under the hybrid-cut — the structural source of its
    replication advantage on power-law graphs.
    """
    if graph.num_vertices == 0:
        return 0.0
    indeg = graph.in_degrees()
    return float((indeg < threshold).mean())
