"""Directed graph container backed by edge arrays.

Edges live in two parallel int64 arrays (``src``, ``dst``) — the in-memory
form of the Figure 5 edge-list format — with cached degree vectors and CSR
adjacency for the analytics that need it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.dataset import Dataset
from repro.errors import PaParError
from repro.formats.records import EDGE_LIST_SCHEMA


class Graph:
    """A directed graph over vertices ``0..num_vertices-1``."""

    def __init__(self, src: np.ndarray, dst: np.ndarray, num_vertices: Optional[int] = None):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise PaParError("src and dst must be 1-D arrays of equal length")
        if len(src) and (src.min() < 0 or dst.min() < 0):
            raise PaParError("vertex ids must be non-negative")
        self.src = src
        self.dst = dst
        inferred = int(max(src.max(), dst.max()) + 1) if len(src) else 0
        self.num_vertices = num_vertices if num_vertices is not None else inferred
        if self.num_vertices < inferred:
            raise PaParError(
                f"num_vertices={self.num_vertices} but edges reference vertex {inferred - 1}"
            )
        self._in_deg: Optional[np.ndarray] = None
        self._out_deg: Optional[np.ndarray] = None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Sequence[tuple[int, int]], num_vertices: Optional[int] = None):
        """Build from (src, dst) tuples."""
        if len(edges) == 0:
            return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), num_vertices)
        arr = np.asarray(edges, dtype=np.int64)
        return cls(arr[:, 0], arr[:, 1], num_vertices)

    @classmethod
    def from_dataset(cls, ds: Dataset, num_vertices: Optional[int] = None):
        """Build from a flat ``graph_edge`` dataset."""
        flat = ds.to_flat().records
        return cls(flat["vertex_a"], flat["vertex_b"], num_vertices)

    def to_dataset(self) -> Dataset:
        """The edge list as a PaPar dataset (hybrid-cut workflow input)."""
        records = np.empty(self.num_edges, dtype=EDGE_LIST_SCHEMA.dtype)
        records["vertex_a"] = self.src
        records["vertex_b"] = self.dst
        return Dataset.from_array(EDGE_LIST_SCHEMA, records)

    # -- basics ---------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return len(self.src)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex (cached)."""
        if self._in_deg is None:
            self._in_deg = np.bincount(self.dst, minlength=self.num_vertices).astype(np.int64)
        return self._in_deg

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex (cached)."""
        if self._out_deg is None:
            self._out_deg = np.bincount(self.src, minlength=self.num_vertices).astype(np.int64)
        return self._out_deg

    def adjacency(self) -> sp.csr_matrix:
        """Sparse adjacency matrix ``A[s, d] = 1``."""
        data = np.ones(self.num_edges, dtype=np.float64)
        return sp.csr_matrix(
            (data, (self.src, self.dst)), shape=(self.num_vertices, self.num_vertices)
        )

    def edges(self) -> np.ndarray:
        """Edges as an (E, 2) array."""
        return np.column_stack((self.src, self.dst))

    def select(self, mask: np.ndarray) -> "Graph":
        """Subgraph of the selected edges (same vertex id space)."""
        return Graph(self.src[mask], self.dst[mask], num_vertices=self.num_vertices)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Graph(V={self.num_vertices}, E={self.num_edges})"
