"""The PowerLyra driving application (paper Sections II-A, IV-C).

Graph containers, synthetic Table II dataset generators, the three
partitioning strategies of Figure 14 (edge-cut / vertex-cut / hybrid-cut),
a GAS execution engine with PageRank and Connected Components, graph
statistics, and the native-PowerLyra baseline (reference hybrid-cut +
partitioning-time model for Figure 15).
"""

from repro.graph.gas import (
    ExecutionReport,
    GASEngine,
    pagerank_reference,
)
from repro.graph.generate import (
    DATASETS,
    GOOGLE,
    LIVEJOURNAL,
    POKEC,
    DatasetSpec,
    generate_graph,
    generate_powerlaw,
)
from repro.graph.graph import Graph
from repro.graph.partition import (
    PartitionedGraph,
    STRATEGIES,
    edge_cut,
    hybrid_cut,
    partition_by,
    vertex_cut,
)
from repro.graph.greedy import greedy_vertex_cut
from repro.graph.ingress import load_graph_distributed
from repro.graph.mpi_gas import DistributedPageRankResult, distributed_pagerank
from repro.graph.replication_theory import (
    expected_random_replication,
    hybrid_low_side_bound,
)
from repro.graph.sssp import sssp
from repro.graph.powerlyra import PartitionerTimeModel, papar_equivalent_hybrid_cut
from repro.graph.stats import (
    GraphStats,
    compute_stats,
    count_triangles,
    degree_tail_ratio,
    is_power_law_like,
)

__all__ = [
    "Graph",
    "generate_graph",
    "generate_powerlaw",
    "DATASETS",
    "GOOGLE",
    "POKEC",
    "LIVEJOURNAL",
    "DatasetSpec",
    "PartitionedGraph",
    "edge_cut",
    "vertex_cut",
    "hybrid_cut",
    "partition_by",
    "STRATEGIES",
    "GASEngine",
    "ExecutionReport",
    "pagerank_reference",
    "GraphStats",
    "compute_stats",
    "count_triangles",
    "degree_tail_ratio",
    "is_power_law_like",
    "papar_equivalent_hybrid_cut",
    "PartitionerTimeModel",
    "distributed_pagerank",
    "DistributedPageRankResult",
    "greedy_vertex_cut",
    "sssp",
    "load_graph_distributed",
    "expected_random_replication",
    "hybrid_low_side_bound",
]
