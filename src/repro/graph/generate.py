"""Synthetic power-law graph generators standing in for the SNAP datasets.

Table II evaluates on three SNAP graphs (Google, Pokec, LiveJournal).  The
files are not available offline, so each dataset is replaced by a synthetic
directed graph with the same vertex:edge ratio and a power-law in-degree
tail (all three SNAP graphs are power-law; the paper's hybrid-cut argument
rests exactly on that property).  ``scale`` shrinks the vertex count while
preserving the average degree, so laptop-scale runs keep the paper's shape.

The generator is a vectorized preferential-attachment/configuration hybrid:
out-endpoints are drawn uniformly; in-endpoints are drawn from a Zipf-like
weight vector ``w_v ~ (v+1)^(-1/(alpha-1))``, which yields an in-degree
power law with exponent ``alpha``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PaParError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters of one Table II dataset."""

    name: str
    vertices: int
    edges: int
    #: in-degree power-law exponent (typical measured values for each graph)
    alpha: float

    @property
    def avg_degree(self) -> float:
        return self.edges / self.vertices


#: Table II of the paper (vertex/edge counts from SNAP).
GOOGLE = DatasetSpec(name="google", vertices=875_713, edges=5_105_039, alpha=2.4)
POKEC = DatasetSpec(name="pokec", vertices=1_632_803, edges=30_622_564, alpha=2.6)
LIVEJOURNAL = DatasetSpec(
    name="livejournal", vertices=4_847_571, edges=68_993_773, alpha=2.5
)

DATASETS = {s.name: s for s in (GOOGLE, POKEC, LIVEJOURNAL)}


def generate_graph(
    name: str = "google",
    scale: float = 0.01,
    seed: int = 0,
    dedup: bool = True,
) -> Graph:
    """A scaled synthetic stand-in for one of the Table II datasets.

    ``scale`` multiplies the vertex count; the edge count keeps the original
    average degree.  ``dedup`` removes duplicate edges and self-loops (SNAP
    graphs are simple).
    """
    if name not in DATASETS:
        raise PaParError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    if not (0 < scale <= 1.0):
        raise PaParError(f"scale must be in (0, 1], got {scale!r}")
    spec = DATASETS[name]
    n = max(int(spec.vertices * scale), 10)
    m = max(int(n * spec.avg_degree), n)
    return generate_powerlaw(n, m, alpha=spec.alpha, seed=seed, dedup=dedup)


def generate_powerlaw(
    num_vertices: int,
    num_edges: int,
    alpha: float = 2.5,
    seed: int = 0,
    dedup: bool = True,
) -> Graph:
    """A directed graph with a power-law in-degree distribution."""
    if num_vertices < 2:
        raise PaParError(f"need at least 2 vertices, got {num_vertices!r}")
    if num_edges < 1:
        raise PaParError(f"need at least 1 edge, got {num_edges!r}")
    if alpha <= 1.0:
        raise PaParError(f"power-law exponent must be > 1, got {alpha!r}")
    rng = np.random.default_rng(seed)
    # Zipf-like in-endpoint weights yield P(indegree = d) ~ d^-alpha
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (alpha - 1.0))
    weights /= weights.sum()
    dst = rng.choice(num_vertices, size=num_edges, p=weights)
    src = rng.integers(0, num_vertices, size=num_edges)
    # scatter hub ids through the id space like real graphs (ids are not
    # degree-sorted in SNAP files)
    relabel = rng.permutation(num_vertices)
    src = relabel[src]
    dst = relabel[dst]
    if dedup:
        keep = src != dst
        src, dst = src[keep], dst[keep]
        packed = src * np.int64(num_vertices) + dst
        _, unique_idx = np.unique(packed, return_index=True)
        unique_idx.sort()
        src, dst = src[unique_idx], dst[unique_idx]
    return Graph(src, dst, num_vertices=num_vertices)
