"""Query batch construction (paper Section IV-A).

"We follow the experimental setups in [35] to randomly pick up sequences
from corresponding databases to construct three batches, each of which
includes 100 sequences.  In the batch '100' and '500', all sequences are
less than 100 and 500 letters, respectively; and for the 'mixed' batch, we
randomly select 100 sequences without the limitation of length."
"""

from __future__ import annotations

import numpy as np

from repro.blast.database import SequenceDatabase
from repro.errors import PaParError

BATCH_KINDS = ("100", "500", "mixed")


def make_batch(
    db: SequenceDatabase,
    kind: str = "mixed",
    batch_size: int = 100,
    seed: int = 0,
) -> list[np.ndarray]:
    """Randomly pick ``batch_size`` query sequences from ``db``.

    ``kind`` "100" restricts to sequences shorter than 100 letters, "500" to
    shorter than 500, "mixed" takes any length.
    """
    if kind not in BATCH_KINDS:
        raise PaParError(f"unknown batch kind {kind!r}; known: {BATCH_KINDS}")
    if batch_size < 1:
        raise PaParError(f"batch_size must be >= 1, got {batch_size!r}")
    rng = np.random.default_rng(seed)
    if kind == "mixed":
        eligible = np.arange(db.num_sequences)
    else:
        eligible = np.flatnonzero(db.seq_size < int(kind))
    if len(eligible) == 0:
        raise PaParError(f"database has no sequences eligible for batch {kind!r}")
    picks = rng.choice(eligible, size=min(batch_size, len(eligible)), replace=False)
    return [db.sequence(int(i)).copy() for i in picks]
