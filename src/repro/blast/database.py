"""Synthetic protein sequence databases.

The paper evaluates on *env_nr* (~6M sequences, 1.7 GB) and *nr*
(~85M sequences, 53 GB); "most of the sequences in two databases are less
than 100 letters".  Neither database ships with this repo, so we generate
synthetic databases whose **length distributions** match the published
description — the property both the partitioner quality metrics and the
search skew depend on (see DESIGN.md, substitutions table):

* ``env_nr`` profile — log-normal lengths, median ~65, long tail to ~2k;
* ``nr`` profile — heavier tail (median ~90, tail to ~10k), reproducing the
  larger skew the paper observes on nr.

Real databases are also *ordered non-randomly* (accession order clusters
related sequences, so neighbouring sequences have correlated lengths).  That
ordering is exactly why the default contiguous ("block") partitioning skews:
a contiguous chunk inherits a biased length profile.  ``length_clustering``
reproduces it: 0.0 shuffles lengths i.i.d., 1.0 sorts fully; the default 0.7
coarsely clusters lengths like a family-ordered database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.blast.scoring import ALPHABET
from repro.errors import PaParError

#: amino-acid background frequencies (Robinson & Robinson order of ALPHABET)
_AA_FREQS = np.array(
    [
        0.078, 0.051, 0.045, 0.054, 0.019, 0.043, 0.063, 0.074, 0.022, 0.051,
        0.091, 0.057, 0.022, 0.039, 0.052, 0.071, 0.058, 0.013, 0.032, 0.065,
    ]
)
_AA_FREQS = _AA_FREQS / _AA_FREQS.sum()


@dataclass
class LengthProfile:
    """Log-normal sequence length model for one database."""

    name: str
    mu: float
    sigma: float
    min_len: int
    max_len: int

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        lengths = rng.lognormal(self.mu, self.sigma, size=n)
        return np.clip(lengths.astype(np.int64), self.min_len, self.max_len)


#: env_nr-like: most sequences < 100 letters, tail to ~2k
ENV_NR_PROFILE = LengthProfile(name="env_nr", mu=4.2, sigma=0.55, min_len=11, max_len=2000)

#: nr-like: heavier tail (the paper reports larger speedups on nr)
NR_PROFILE = LengthProfile(name="nr", mu=4.5, sigma=0.85, min_len=11, max_len=10000)

PROFILES = {"env_nr": ENV_NR_PROFILE, "nr": NR_PROFILE}


@dataclass
class SequenceDatabase:
    """A protein database: concatenated encoded residues + per-sequence extents.

    Mirrors the muBLASTP on-disk layout the four-tuple index points into:
    one encoded-residue blob, one description blob, and per-sequence
    ``(start, size)`` extents into each.
    """

    name: str
    residues: np.ndarray  # uint8 codes, all sequences concatenated
    seq_start: np.ndarray  # int64 offsets into residues
    seq_size: np.ndarray  # int64 lengths
    descriptions: bytes  # concatenated description text
    desc_start: np.ndarray
    desc_size: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.seq_start)
        if not (len(self.seq_size) == len(self.desc_start) == len(self.desc_size) == n):
            raise PaParError("database extent arrays must have equal length")

    @property
    def num_sequences(self) -> int:
        return len(self.seq_start)

    @property
    def total_residues(self) -> int:
        return int(self.seq_size.sum())

    def sequence(self, i: int) -> np.ndarray:
        """Encoded residues of sequence ``i``."""
        s = int(self.seq_start[i])
        return self.residues[s : s + int(self.seq_size[i])]

    def description(self, i: int) -> str:
        s = int(self.desc_start[i])
        return self.descriptions[s : s + int(self.desc_size[i])].decode("ascii")

    def lengths(self) -> np.ndarray:
        return self.seq_size.copy()


def generate_database(
    profile: str = "env_nr",
    num_sequences: int = 10_000,
    seed: int = 0,
    length_clustering: float = 0.7,
    name: Optional[str] = None,
) -> SequenceDatabase:
    """Generate a synthetic database with a named length profile.

    ``length_clustering`` in [0, 1] controls how strongly neighbouring
    sequences have similar lengths (see module docstring).
    """
    if profile not in PROFILES:
        raise PaParError(f"unknown database profile {profile!r}; known: {sorted(PROFILES)}")
    if not (0.0 <= length_clustering <= 1.0):
        raise PaParError(f"length_clustering must be in [0, 1], got {length_clustering!r}")
    if num_sequences < 1:
        raise PaParError(f"num_sequences must be >= 1, got {num_sequences!r}")
    rng = np.random.default_rng(seed)
    prof = PROFILES[profile]
    lengths = prof.sample(num_sequences, rng)

    # order lengths: blend a fully sorted arrangement with a shuffle by
    # sorting "rank + noise" — larger clustering => less noise
    ranks = np.argsort(np.argsort(lengths))
    noise = rng.normal(0, 1e-9 + (1.0 - length_clustering) * num_sequences, num_sequences)
    order = np.argsort(ranks + noise, kind="stable")
    lengths = lengths[order]

    total = int(lengths.sum())
    residues = rng.choice(
        np.arange(20, dtype=np.uint8), size=total, p=_AA_FREQS
    )
    seq_start = np.concatenate(([0], np.cumsum(lengths)))[:-1]

    desc_parts = []
    desc_start = np.empty(num_sequences, dtype=np.int64)
    desc_size = np.empty(num_sequences, dtype=np.int64)
    pos = 0
    db_name = name or prof.name
    for i in range(num_sequences):
        d = f">{db_name}|{seed:04d}{i:08d}| synthetic protein len={int(lengths[i])}"
        b = d.encode("ascii")
        desc_parts.append(b)
        desc_start[i] = pos
        desc_size[i] = len(b)
        pos += len(b)

    return SequenceDatabase(
        name=db_name,
        residues=residues,
        seq_start=seq_start.astype(np.int64),
        seq_size=lengths.astype(np.int64),
        descriptions=b"".join(desc_parts),
        desc_start=desc_start,
        desc_size=desc_size,
    )


def fraction_under(db: SequenceDatabase, length: int) -> float:
    """Fraction of sequences shorter than ``length`` residues."""
    return float((db.seq_size < length).mean())
