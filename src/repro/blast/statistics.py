"""Karlin-Altschul statistics: bit scores and e-values for BLAST hits.

BLAST reports hit significance through the Karlin-Altschul framework: a raw
alignment score ``S`` becomes a *bit score* ``S' = (lambda*S - ln K)/ln 2``
and the expected number of chance alignments at least that good in a search
of an ``m x n`` space is ``E = m * n * 2^-S'``.

``lambda`` and ``K`` are the ungapped BLOSUM62 parameters for the standard
amino-acid background frequencies (the NCBI values); :func:`karlin_lambda`
also derives lambda from first principles (the unique positive root of
``sum_ij p_i p_j exp(lambda * s_ij) = 1``) so the constant is checked, not
just asserted.
"""

from __future__ import annotations

import math

import numpy as np

from repro.blast.database import _AA_FREQS
from repro.blast.scoring import BLOSUM62
from repro.errors import PaParError

#: NCBI ungapped BLOSUM62 parameters
LAMBDA_UNGAPPED = 0.3176
K_UNGAPPED = 0.134


def karlin_lambda(
    scores: np.ndarray = None,
    freqs: np.ndarray = None,
    tol: float = 1e-9,
) -> float:
    """Solve for the Karlin-Altschul lambda of a scoring system.

    Finds the positive root of ``sum_ij p_i p_j e^{lambda s_ij} = 1`` by
    bisection.  With the defaults (BLOSUM62 over the standard background)
    the result is ~0.32, matching the published ungapped value.
    """
    scores = BLOSUM62[:20, :20].astype(np.float64) if scores is None else np.asarray(scores, dtype=np.float64)
    freqs = _AA_FREQS if freqs is None else np.asarray(freqs, dtype=np.float64)
    if scores.shape != (len(freqs), len(freqs)):
        raise PaParError("scores must be square over the frequency alphabet")
    expected = float(freqs @ scores @ freqs)
    if expected >= 0:
        raise PaParError(
            f"scoring system has non-negative expected score {expected:.4f}; "
            "Karlin-Altschul statistics require a negative drift"
        )
    pp = np.outer(freqs, freqs)

    def phi(lam: float) -> float:
        return float((pp * np.exp(lam * scores)).sum()) - 1.0

    lo, hi = 1e-6, 2.0
    while phi(hi) < 0:
        hi *= 2.0
        if hi > 100:
            raise PaParError("failed to bracket lambda")
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if phi(mid) < 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def bit_score(raw_score: int, lam: float = LAMBDA_UNGAPPED, k: float = K_UNGAPPED) -> float:
    """Normalized bit score of a raw alignment score."""
    return (lam * raw_score - math.log(k)) / math.log(2.0)


def e_value(
    raw_score: int,
    query_length: int,
    database_length: int,
    lam: float = LAMBDA_UNGAPPED,
    k: float = K_UNGAPPED,
) -> float:
    """Expected number of chance hits scoring at least ``raw_score``."""
    if query_length < 1 or database_length < 1:
        raise PaParError("query and database lengths must be positive")
    return query_length * database_length * math.pow(2.0, -bit_score(raw_score, lam, k))


def significant(
    raw_score: int,
    query_length: int,
    database_length: int,
    threshold: float = 10.0,
) -> bool:
    """BLAST's default report criterion: ``E <= threshold``."""
    return e_value(raw_score, query_length, database_length) <= threshold
