"""The muBLASTP partitioning methods (baseline implementations).

Two methods, matching the labels of Section IV-B:

* ``block`` — the default method: contiguous chunks with similar sequence
  counts (no sort);
* ``cyclic`` — the optimized method of [36]: stable-sort the index by the
  encoded sequence length, then deal sequences round-robin, so every
  partition has (1) a similar number of sequences, (2) well-mixed lengths
  and (3) similar encoded data sizes.

These are the *application's own* partitioners, used as the comparison
baseline: the current muBLASTP implementation "only provides a multithreaded
method for the input database [and] can not scale out on 16 nodes", which is
what Figure 13 measures PaPar against.  :func:`baseline_partition_time`
models that single-node multithreaded runtime with the shared cost model.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.model import CostModel
from repro.errors import PaParError
from repro.formats.records import BLAST_INDEX_SCHEMA
from repro.policies.distr import get_policy


def mublastp_partition(
    index: np.ndarray, num_partitions: int, policy: str = "cyclic"
) -> list[np.ndarray]:
    """Partition a four-tuple index exactly like muBLASTP does."""
    if index.dtype != BLAST_INDEX_SCHEMA.dtype:
        raise PaParError("mublastp_partition expects a blast_db index array")
    if num_partitions < 1:
        raise PaParError(f"num_partitions must be >= 1, got {num_partitions!r}")
    if policy == "cyclic":
        order = np.argsort(index["seq_size"], kind="stable")
        work = index[order]
    elif policy == "block":
        work = index
    else:
        raise PaParError(f"unknown muBLASTP policy {policy!r}; use 'cyclic' or 'block'")
    dist = get_policy("cyclic" if policy == "cyclic" else "block")
    perm = dist.permutation(len(work), num_partitions)
    counts = dist.counts(len(work), num_partitions)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    return [
        work[perm[offsets[p] : offsets[p + 1]]].copy() for p in range(num_partitions)
    ]


def baseline_partition_time(
    num_sequences: int,
    threads: int = 16,
    cost: CostModel = CostModel(),
) -> float:
    """Modeled runtime of muBLASTP's multithreaded single-node partitioner.

    One parallel sort of the index plus one streaming pass to deal and
    rewrite the entries.  It uses every core of *one* node (the paper runs it
    with 16 threads) but cannot scale out.
    """
    if num_sequences < 0:
        raise PaParError(f"num_sequences must be >= 0, got {num_sequences!r}")
    sort = cost.parallel(cost.sort(num_sequences), threads)
    deal = cost.parallel(cost.stream(num_sequences) * 2, threads)
    return sort + deal + cost.job_overhead


# -- partition quality metrics (the three goals of [36]) ------------------------


def count_balance(partitions: list[np.ndarray]) -> float:
    """Max/mean ratio of per-partition sequence counts (1.0 = perfect)."""
    counts = np.array([len(p) for p in partitions], dtype=np.float64)
    if counts.sum() == 0:
        return 1.0
    return float(counts.max() / counts.mean())


def size_balance(partitions: list[np.ndarray]) -> float:
    """Max/mean ratio of per-partition encoded data sizes (goal 3)."""
    sizes = np.array([p["seq_size"].sum() for p in partitions], dtype=np.float64)
    if sizes.sum() == 0:
        return 1.0
    return float(sizes.max() / sizes.mean())


def length_mixing(partitions: list[np.ndarray]) -> float:
    """How uniformly long sequences spread over partitions (goal 2).

    Measured as the max/mean ratio of each partition's mean sequence length;
    1.0 means every partition sees the same length profile.
    """
    means = np.array(
        [p["seq_size"].mean() if len(p) else 0.0 for p in partitions], dtype=np.float64
    )
    if means.sum() == 0:
        return 1.0
    return float(means.max() / means.mean())
