"""Distributed muBLASTP search driver on the simulated MPI runtime.

muBLASTP follows MPI + OpenMP: one MPI rank per socket, each rank owning one
database partition and searching the whole query batch against it with its
OpenMP threads.  This driver reproduces that execution: rank ``r`` owns
partition ``r``, builds its k-mer index, searches the broadcast batch, and
the results are reduced to rank 0.  Search time is charged to the virtual
clock from the kernel's deterministic work counters, so the Figure 12
makespan (the slowest partition) is the run's simulated elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.blast.database import SequenceDatabase
from repro.blast.index import build_index, extract_partition
from repro.blast.partition import mublastp_partition
from repro.blast.search import PartitionIndex, SearchResult
from repro.cluster.model import ClusterModel
from repro.errors import PaParError
from repro.mpi import MAX, SUM, run_mpi
from repro.mpi.comm import Communicator


@dataclass
class DistributedSearchResult:
    """Outcome of one distributed batch search."""

    total: SearchResult
    #: simulated seconds of the slowest rank (the Figure 12 quantity)
    makespan: float
    per_partition_seconds: list[float]


def _search_rank_program(
    comm: Communicator,
    partitions: list[SequenceDatabase],
    queries: list[np.ndarray],
) -> tuple[SearchResult, float]:
    """One rank: index own partition, search the batch, reduce results."""
    my_db = partitions[comm.rank]
    index = PartitionIndex(my_db)
    result = index.search_batch(queries)
    # charge the deterministic search cost to the virtual clock, spread over
    # the rank's worker threads (muBLASTP's OpenMP level)
    local_seconds = result.modeled_seconds
    if comm.cluster is not None:
        comm.charge_compute(comm.cluster.compute(local_seconds))
    # reduce hit statistics to rank 0 (muBLASTP's result collection)
    total_hits = comm.reduce(result.num_hits, SUM, root=0)
    total_cols = comm.reduce(result.extension_columns, SUM, root=0)
    best = comm.reduce(result.best_score, MAX, root=0)
    combined = (
        SearchResult(num_hits=total_hits, extension_columns=total_cols, best_score=best)
        if comm.rank == 0
        else result
    )
    return combined, local_seconds


def distributed_search(
    db: SequenceDatabase,
    queries: list[np.ndarray],
    num_partitions: int,
    policy: str = "cyclic",
    cluster: Optional[ClusterModel] = None,
) -> DistributedSearchResult:
    """Partition ``db``, search ``queries`` with one rank per partition."""
    if num_partitions < 1:
        raise PaParError(f"num_partitions must be >= 1, got {num_partitions!r}")
    if not queries:
        raise PaParError("distributed_search needs at least one query")
    index = build_index(db)
    parts_idx = mublastp_partition(index, num_partitions, policy=policy)
    partitions = [extract_partition(db, p) for p in parts_idx]
    run = run_mpi(
        _search_rank_program,
        num_partitions,
        cluster=cluster,
        args=(partitions, queries),
    )
    per_partition = [seconds for _, seconds in run.results]
    total = run.results[0][0]
    makespan = run.elapsed if cluster is not None else max(per_partition)
    return DistributedSearchResult(
        total=total, makespan=makespan, per_partition_seconds=per_partition
    )
