"""Local alignment with traceback: human-readable BLAST hit reports.

The search kernel scores hits; this module recovers the actual alignment
(Smith-Waterman with affine gaps, full traceback) and formats it the way
BLAST output does — query line, match line (``|`` identity, ``+`` positive
substitution), subject line — plus identity/positive/gap statistics.
Intended for reporting the top hits, so the quadratic DP is applied to the
clipped hit regions, not whole databases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blast.gapped import GAP_EXTEND, GAP_OPEN
from repro.blast.scoring import BLOSUM62, decode
from repro.errors import PaParError


@dataclass(frozen=True)
class Alignment:
    """One local alignment with its statistics."""

    score: int
    query_aligned: str
    match_line: str
    subject_aligned: str
    query_start: int
    subject_start: int
    identities: int
    positives: int
    gaps: int

    @property
    def length(self) -> int:
        return len(self.query_aligned)

    @property
    def identity_fraction(self) -> float:
        return self.identities / self.length if self.length else 0.0

    def pretty(self, width: int = 60) -> str:
        """BLAST-style block rendering."""
        out = [
            f"Score = {self.score}, Identities = {self.identities}/{self.length} "
            f"({self.identity_fraction:.0%}), Gaps = {self.gaps}/{self.length}"
        ]
        for start in range(0, self.length, width):
            q = self.query_aligned[start : start + width]
            m = self.match_line[start : start + width]
            s = self.subject_aligned[start : start + width]
            out.append(f"Query  {q}")
            out.append(f"       {m}")
            out.append(f"Sbjct  {s}")
        return "\n".join(out)


def smith_waterman(
    query: np.ndarray,
    subject: np.ndarray,
    gap_open: int = GAP_OPEN,
    gap_extend: int = GAP_EXTEND,
) -> Alignment:
    """Full Smith-Waterman (affine gaps, Gotoh) with traceback."""
    m, n = len(query), len(subject)
    if m == 0 or n == 0:
        raise PaParError("cannot align empty sequences")
    NEG = -(10**9)
    H = np.zeros((m + 1, n + 1), dtype=np.int64)
    E = np.full((m + 1, n + 1), NEG, dtype=np.int64)  # gap in query (left)
    F = np.full((m + 1, n + 1), NEG, dtype=np.int64)  # gap in subject (up)
    best, bi, bj = 0, 0, 0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            E[i, j] = max(H[i, j - 1] - gap_open - gap_extend, E[i, j - 1] - gap_extend)
            F[i, j] = max(H[i - 1, j] - gap_open - gap_extend, F[i - 1, j] - gap_extend)
            diag = H[i - 1, j - 1] + int(BLOSUM62[query[i - 1], subject[j - 1]])
            H[i, j] = max(0, diag, E[i, j], F[i, j])
            if H[i, j] > best:
                best, bi, bj = int(H[i, j]), i, j
    # traceback from (bi, bj) until H == 0
    q_parts: list[str] = []
    m_parts: list[str] = []
    s_parts: list[str] = []
    i, j = bi, bj
    identities = positives = gaps = 0
    while i > 0 and j > 0 and H[i, j] > 0:
        sub = int(BLOSUM62[query[i - 1], subject[j - 1]])
        if H[i, j] == H[i - 1, j - 1] + sub:
            qc, sc = decode(query[i - 1 : i]), decode(subject[j - 1 : j])
            q_parts.append(qc)
            s_parts.append(sc)
            if qc == sc:
                m_parts.append("|")
                identities += 1
                positives += 1
            elif sub > 0:
                m_parts.append("+")
                positives += 1
            else:
                m_parts.append(" ")
            i -= 1
            j -= 1
        elif H[i, j] == E[i, j]:
            # gap in query: consume subject until the E-run opened
            while j > 0 and H[i, j] == E[i, j] and E[i, j] == E[i, j - 1] - gap_extend:
                q_parts.append("-")
                m_parts.append(" ")
                s_parts.append(decode(subject[j - 1 : j]))
                gaps += 1
                j -= 1
            q_parts.append("-")
            m_parts.append(" ")
            s_parts.append(decode(subject[j - 1 : j]))
            gaps += 1
            j -= 1
        else:
            while i > 0 and H[i, j] == F[i, j] and F[i, j] == F[i - 1, j] - gap_extend:
                q_parts.append(decode(query[i - 1 : i]))
                m_parts.append(" ")
                s_parts.append("-")
                gaps += 1
                i -= 1
            q_parts.append(decode(query[i - 1 : i]))
            m_parts.append(" ")
            s_parts.append("-")
            gaps += 1
            i -= 1
    return Alignment(
        score=best,
        query_aligned="".join(reversed(q_parts)),
        match_line="".join(reversed(m_parts)),
        subject_aligned="".join(reversed(s_parts)),
        query_start=i,
        subject_start=j,
        identities=identities,
        positives=positives,
        gaps=gaps,
    )
