"""A simplified BLASTP search kernel (seed and extend).

muBLASTP builds a k-mer index over each *database partition* and searches
queries against it.  This kernel reproduces the parts of that pipeline whose
cost drives the paper's Figure 12 skew argument:

1. **Index**: every word-size-3 k-mer of every database sequence, position-
   indexed (vectorized base-21 rolling codes).
2. **Seed**: exact k-mer matches between query and database (real BLAST adds
   neighbourhood words above a threshold; exact matching keeps the same
   length-proportional hit statistics at lower constant cost — a documented
   simplification).
3. **Extend**: ungapped X-drop extension along the diagonal of each seed,
   scored with BLOSUM62.

The returned ``work`` (number of extension columns + hits) is a
deterministic, machine-independent measure of search cost: it grows with
both the query length and the database sequence lengths, which is exactly
why partitions with skewed length profiles produce skewed search runtimes
("the runtime of sequence search depends on the distribution of sequence
lengths more than the total size of each partition").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.blast.database import SequenceDatabase
from repro.blast.scoring import BLOSUM62
from repro.errors import PaParError

WORD_SIZE = 3
ALPHABET_SIZE = 21
X_DROP = 7
#: modeled seconds per seed hit and per extension column (single core)
HIT_COST_S = 40e-9
EXT_COST_S = 6e-9


@dataclass
class SearchResult:
    """Outcome of one query (or batch) against one partition."""

    num_hits: int
    extension_columns: int
    best_score: int

    @property
    def work(self) -> int:
        """Deterministic work units (hits + extension columns)."""
        return self.num_hits + self.extension_columns

    @property
    def modeled_seconds(self) -> float:
        """Single-core search time under the fixed per-unit costs."""
        return self.num_hits * HIT_COST_S + self.extension_columns * EXT_COST_S

    def __add__(self, other: "SearchResult") -> "SearchResult":
        return SearchResult(
            num_hits=self.num_hits + other.num_hits,
            extension_columns=self.extension_columns + other.extension_columns,
            best_score=max(self.best_score, other.best_score),
        )

    def e_value(self, query_length: int, database_length: int) -> float:
        """Karlin-Altschul e-value of the best hit (see blast.statistics)."""
        from repro.blast.statistics import e_value as _e_value

        return _e_value(self.best_score, query_length, database_length)

    def is_significant(
        self, query_length: int, database_length: int, threshold: float = 10.0
    ) -> bool:
        """BLAST's default report criterion on the best hit."""
        return self.e_value(query_length, database_length) <= threshold


def _kmer_codes(residues: np.ndarray) -> np.ndarray:
    """Rolling base-21 codes of all length-3 windows of ``residues``."""
    if len(residues) < WORD_SIZE:
        return np.empty(0, dtype=np.int64)
    r = residues.astype(np.int64)
    return r[:-2] * ALPHABET_SIZE**2 + r[1:-1] * ALPHABET_SIZE + r[2:]


class PartitionIndex:
    """K-mer index over one database partition (what muBLASTP builds)."""

    def __init__(self, db: SequenceDatabase) -> None:
        self.db = db
        codes_parts = []
        pos_parts = []
        seq_parts = []
        for i in range(db.num_sequences):
            seq = db.sequence(i)
            codes = _kmer_codes(seq)
            codes_parts.append(codes)
            pos_parts.append(np.arange(len(codes), dtype=np.int64))
            seq_parts.append(np.full(len(codes), i, dtype=np.int64))
        if codes_parts:
            codes = np.concatenate(codes_parts)
            positions = np.concatenate(pos_parts)
            seq_ids = np.concatenate(seq_parts)
        else:
            codes = np.empty(0, dtype=np.int64)
            positions = np.empty(0, dtype=np.int64)
            seq_ids = np.empty(0, dtype=np.int64)
        order = np.argsort(codes, kind="stable")
        self._codes = codes[order]
        self._positions = positions[order]
        self._seq_ids = seq_ids[order]

    @property
    def num_kmers(self) -> int:
        return len(self._codes)

    def lookup(self, code: int) -> tuple[np.ndarray, np.ndarray]:
        """(seq_ids, positions) of every database occurrence of ``code``."""
        lo = np.searchsorted(self._codes, code, side="left")
        hi = np.searchsorted(self._codes, code, side="right")
        return self._seq_ids[lo:hi], self._positions[lo:hi]

    # -- search ---------------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        max_extensions_per_kmer: int = 64,
        two_hit: bool = False,
        window: int = 40,
    ) -> SearchResult:
        """Search one encoded query against this partition.

        With ``two_hit=True`` the kernel applies BLAST's two-hit heuristic:
        an extension triggers only when two non-overlapping hits land on the
        same diagonal of the same subject within ``window`` columns — far
        fewer extensions for the same sensitivity on real matches.
        """
        if query.dtype != np.uint8:
            raise PaParError("query must be an encoded uint8 residue array")
        q_codes = _kmer_codes(query)
        num_hits = 0
        ext_cols = 0
        best = 0
        # two-hit state: (subject, diagonal) -> query position of the last hit
        last_hit: dict[tuple[int, int], int] = {}
        for q_pos, code in enumerate(q_codes):
            seq_ids, d_positions = self.lookup(int(code))
            n = len(seq_ids)
            if n == 0:
                continue
            num_hits += n
            extended = 0
            for j in range(n):
                if extended >= max_extensions_per_kmer:
                    break
                seq_id = int(seq_ids[j])
                d_pos = int(d_positions[j])
                if two_hit:
                    diag = d_pos - q_pos
                    key = (seq_id, diag)
                    prev = last_hit.get(key)
                    if prev is None or q_pos - prev > window:
                        # first hit on this diagonal (or stale): remember it
                        last_hit[key] = q_pos
                        continue
                    if q_pos - prev < WORD_SIZE:
                        # overlapping hit: keep the older anchor (BLAST rule)
                        continue
                    # second, non-overlapping hit within the window: extend
                    last_hit[key] = q_pos
                cols, score = self._extend(query, int(q_pos), seq_id, d_pos)
                ext_cols += cols
                extended += 1
                if score > best:
                    best = score
        return SearchResult(num_hits=num_hits, extension_columns=ext_cols, best_score=best)

    def _extend(
        self, query: np.ndarray, q_pos: int, seq_id: int, d_pos: int
    ) -> tuple[int, int]:
        """Ungapped X-drop extension along one diagonal; returns (columns, score)."""
        subject = self.db.sequence(seq_id)
        # seed score
        score = int(
            BLOSUM62[query[q_pos], subject[d_pos]]
            + BLOSUM62[query[q_pos + 1], subject[d_pos + 1]]
            + BLOSUM62[query[q_pos + 2], subject[d_pos + 2]]
        )
        best = score
        cols = WORD_SIZE
        # extend right
        qi, di = q_pos + WORD_SIZE, d_pos + WORD_SIZE
        while qi < len(query) and di < len(subject):
            score += int(BLOSUM62[query[qi], subject[di]])
            cols += 1
            if score > best:
                best = score
            if best - score > X_DROP:
                break
            qi += 1
            di += 1
        # extend left
        score = best
        qi, di = q_pos - 1, d_pos - 1
        while qi >= 0 and di >= 0:
            score += int(BLOSUM62[query[qi], subject[di]])
            cols += 1
            if score > best:
                best = score
            if best - score > X_DROP:
                break
            qi -= 1
            di -= 1
        return cols, best

    def search_batch(self, queries: list[np.ndarray]) -> SearchResult:
        """Search a whole query batch; results accumulate."""
        total = SearchResult(0, 0, 0)
        for q in queries:
            total = total + self.search(q)
        return total


def best_alignment(index: "PartitionIndex", query: np.ndarray):
    """Full alignment report of the query's best hit in ``index``.

    Finds the subject holding the highest-scoring seed extension, then runs
    the traceback Smith-Waterman (``repro.blast.align``) on that subject to
    produce a BLAST-style alignment.  Returns ``(subject_id, Alignment)`` or
    ``(None, None)`` when the partition yields no seeds.
    """
    from repro.blast.align import smith_waterman

    q_codes = _kmer_codes(query)
    best_subject = None
    best_score = -1
    for q_pos, code in enumerate(q_codes):
        seq_ids, d_positions = index.lookup(int(code))
        for j in range(min(len(seq_ids), 16)):
            cols, score = index._extend(
                query, int(q_pos), int(seq_ids[j]), int(d_positions[j])
            )
            if score > best_score:
                best_score = score
                best_subject = int(seq_ids[j])
    if best_subject is None:
        return None, None
    return best_subject, smith_waterman(query, index.db.sequence(best_subject))


def partition_makespan(
    partitions: list[SequenceDatabase], queries: list[np.ndarray]
) -> tuple[float, list[float]]:
    """Modeled parallel search time: every partition searched concurrently.

    Returns ``(makespan_seconds, per_partition_seconds)`` — the paper's
    Figure 12 quantity is the makespan (slowest partition), which is what
    length skew inflates under block partitioning.
    """
    times = []
    for part in partitions:
        index = PartitionIndex(part)
        result = index.search_batch(queries)
        times.append(result.modeled_seconds)
    return (max(times) if times else 0.0, times)
