"""The muBLASTP driving application (paper Section II-A, IV-B).

Synthetic protein databases with env_nr / nr-like length profiles, the
four-tuple index, muBLASTP's own block/cyclic partitioners (the Figure 13
baseline), the pointer-recalculation add-on, a simplified seed-and-extend
BLASTP search kernel (for Figure 12's skew measurements), and query batch
construction.
"""

from repro.blast.align import Alignment, smith_waterman
from repro.blast.driver import DistributedSearchResult, distributed_search
from repro.blast.fasta import read_fasta, write_fasta
from repro.blast.gapped import banded_gapped_score, gapped_extend_seed
from repro.blast.statistics import bit_score, e_value, karlin_lambda, significant
from repro.blast.database import (
    ENV_NR_PROFILE,
    NR_PROFILE,
    PROFILES,
    SequenceDatabase,
    fraction_under,
    generate_database,
)
from repro.blast.index import (
    INDEX_HEADER,
    build_index,
    extract_partition,
    generate_index,
    index_dataset,
    recalculate_pointers,
    write_index,
)
from repro.blast.partition import (
    baseline_partition_time,
    count_balance,
    length_mixing,
    mublastp_partition,
    size_balance,
)
from repro.blast.queries import BATCH_KINDS, make_batch
from repro.blast.scoring import ALPHABET, BLOSUM62, decode, encode
from repro.blast.search import (
    PartitionIndex,
    SearchResult,
    partition_makespan,
)

__all__ = [
    "SequenceDatabase",
    "generate_database",
    "fraction_under",
    "ENV_NR_PROFILE",
    "NR_PROFILE",
    "PROFILES",
    "build_index",
    "generate_index",
    "index_dataset",
    "write_index",
    "recalculate_pointers",
    "extract_partition",
    "INDEX_HEADER",
    "mublastp_partition",
    "baseline_partition_time",
    "count_balance",
    "size_balance",
    "length_mixing",
    "make_batch",
    "BATCH_KINDS",
    "encode",
    "decode",
    "ALPHABET",
    "BLOSUM62",
    "PartitionIndex",
    "SearchResult",
    "partition_makespan",
    "distributed_search",
    "DistributedSearchResult",
    "read_fasta",
    "write_fasta",
    "banded_gapped_score",
    "gapped_extend_seed",
    "bit_score",
    "e_value",
    "karlin_lambda",
    "significant",
    "smith_waterman",
    "Alignment",
]
