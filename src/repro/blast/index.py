"""The muBLASTP four-tuple index (Figures 1 and 4).

Every database sequence has one index entry
``{seq_start, seq_size, desc_start, desc_size}``; the partitioning methods
manipulate this index, not the sequence data itself.  After partitioning,
muBLASTP "needs to recalculate the start pointers of sequence data and
description data" — implemented here as the user-defined add-on
:func:`recalculate_pointers` the paper mentions in Section III-C.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.blast.database import SequenceDatabase
from repro.core.dataset import Dataset
from repro.errors import PaParError
from repro.formats.binary import write_binary
from repro.formats.records import BLAST_INDEX_SCHEMA

#: the 32-byte header the BLAST index file reserves (Figure 4 start_position)
INDEX_HEADER = b"PAPARBLASTINDEXv1".ljust(32, b"\x00")


def generate_index(
    profile: str = "env_nr",
    num_sequences: int = 1_000_000,
    seed: int = 0,
    length_clustering: float = 0.7,
) -> np.ndarray:
    """Generate only the four-tuple index, without sequence/description data.

    The partitioning methods manipulate the index alone, so the
    partitioning-time experiments (Figure 13) can run at realistic sequence
    counts without materializing gigabytes of residues.  Description sizes
    use the synthetic generator's fixed-width template.
    """
    from repro.blast.database import PROFILES
    from repro.errors import PaParError

    if profile not in PROFILES:
        raise PaParError(f"unknown database profile {profile!r}; known: {sorted(PROFILES)}")
    rng = np.random.default_rng(seed)
    lengths = PROFILES[profile].sample(num_sequences, rng).astype(np.int64)
    ranks = np.argsort(np.argsort(lengths))
    noise = rng.normal(0, 1e-9 + (1.0 - length_clustering) * num_sequences, num_sequences)
    lengths = lengths[np.argsort(ranks + noise, kind="stable")]

    index = np.empty(num_sequences, dtype=BLAST_INDEX_SCHEMA.dtype)
    index["seq_size"] = lengths
    index["seq_start"] = np.concatenate(([0], np.cumsum(lengths)))[:-1]
    desc_size = np.full(num_sequences, 56, dtype=np.int64)
    index["desc_size"] = desc_size
    index["desc_start"] = np.concatenate(([0], np.cumsum(desc_size)))[:-1]
    return index


def build_index(db: SequenceDatabase) -> np.ndarray:
    """The database's four-tuple index as a structured array."""
    index = np.empty(db.num_sequences, dtype=BLAST_INDEX_SCHEMA.dtype)
    index["seq_start"] = db.seq_start
    index["seq_size"] = db.seq_size
    index["desc_start"] = db.desc_start
    index["desc_size"] = db.desc_size
    return index


def index_dataset(db: SequenceDatabase) -> Dataset:
    """The index wrapped as a PaPar dataset (workflow input)."""
    return Dataset.from_array(BLAST_INDEX_SCHEMA, build_index(db))


def write_index(path, db: SequenceDatabase) -> None:
    """Write the index in the binary file format of Figure 4."""
    write_binary(path, build_index(db), BLAST_INDEX_SCHEMA, header=INDEX_HEADER)


def recalculate_pointers(partition: np.ndarray) -> np.ndarray:
    """Rebase a partition's start pointers to its own contiguous blobs.

    The add-on operator of Section III-C: after distribution each partition
    stores its sequences back to back, so ``seq_start`` / ``desc_start``
    become running sums of the partition's own sizes.  Sizes are unchanged.
    """
    if partition.dtype != BLAST_INDEX_SCHEMA.dtype:
        raise PaParError("recalculate_pointers expects a blast_db index array")
    out = partition.copy()
    out["seq_start"] = np.concatenate(([0], np.cumsum(out["seq_size"])))[:-1]
    out["desc_start"] = np.concatenate(([0], np.cumsum(out["desc_size"])))[:-1]
    return out


def extract_partition(
    db: SequenceDatabase, partition_index: Union[np.ndarray, Dataset]
) -> SequenceDatabase:
    """Materialize one partition as its own database.

    Gathers the partition's residue and description bytes (in index order)
    and rebases the extents with :func:`recalculate_pointers`, producing
    exactly what a muBLASTP worker node would load.
    """
    if isinstance(partition_index, Dataset):
        partition_index = partition_index.to_flat().records
    rebased = recalculate_pointers(partition_index)
    residues = np.concatenate(
        [
            db.residues[int(s) : int(s) + int(sz)]
            for s, sz in zip(partition_index["seq_start"], partition_index["seq_size"])
        ]
        or [np.empty(0, dtype=np.uint8)]
    )
    descriptions = b"".join(
        db.descriptions[int(s) : int(s) + int(sz)]
        for s, sz in zip(partition_index["desc_start"], partition_index["desc_size"])
    )
    return SequenceDatabase(
        name=f"{db.name}.part",
        residues=residues,
        seq_start=rebased["seq_start"].astype(np.int64),
        seq_size=rebased["seq_size"].astype(np.int64),
        descriptions=descriptions,
        desc_start=rebased["desc_start"].astype(np.int64),
        desc_size=rebased["desc_size"].astype(np.int64),
    )
