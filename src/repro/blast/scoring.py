"""Protein alphabet encoding and the BLOSUM62 scoring matrix.

muBLASTP scores alignments with BLOSUM62; this module carries the standard
20x20 matrix (plus ``X`` as a catch-all) and the residue <-> code mapping
used by the encoded sequence data the index points into.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PaParError

#: the 20 standard amino acids, in BLOSUM62 row order, plus X (unknown)
ALPHABET = "ARNDCQEGHILKMFPSTWYVX"

#: residue character -> small integer code
CHAR_TO_CODE = {c: i for i, c in enumerate(ALPHABET)}

# BLOSUM62 upper-triangle source (standard NCBI values), row order = ALPHABET
# without X; X scores -1 against everything and -1 with itself.
_BLOSUM62_ROWS = [
    # A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0],  # A
    [-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3],  # R
    [-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3],  # N
    [-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3],  # D
    [0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1],  # C
    [-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2],  # Q
    [-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2],  # E
    [0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3],  # G
    [-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3],  # H
    [-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3],  # I
    [-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1],  # L
    [-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2],  # K
    [-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1],  # M
    [-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1],  # F
    [-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2],  # P
    [1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2],  # S
    [0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0],  # T
    [-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3],  # W
    [-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -2],  # Y
    [0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -2, 4],  # V
]


def _build_blosum62() -> np.ndarray:
    n = len(ALPHABET)
    matrix = np.full((n, n), -1, dtype=np.int8)
    core = np.array(_BLOSUM62_ROWS, dtype=np.int8)
    matrix[:20, :20] = core
    return matrix


#: BLOSUM62 as a (21, 21) int8 array indexed by residue codes
BLOSUM62 = _build_blosum62()


def encode(sequence: str) -> np.ndarray:
    """Encode a protein string into residue codes (uint8 array)."""
    try:
        return np.frombuffer(
            bytes(CHAR_TO_CODE[c] for c in sequence.upper()), dtype=np.uint8
        ).copy()
    except KeyError as exc:
        raise PaParError(f"unknown residue {exc.args[0]!r} in sequence") from exc


def decode(codes: np.ndarray) -> str:
    """Decode residue codes back to a protein string."""
    return "".join(ALPHABET[int(c)] for c in codes)


def score_pair(a: int, b: int) -> int:
    """BLOSUM62 score of two residue codes."""
    return int(BLOSUM62[a, b])
