"""Banded gapped extension (BLAST's third stage).

High-scoring ungapped seeds are refined with a gapped alignment restricted
to a diagonal band — a banded Smith-Waterman with affine gap penalties
(BLOSUM62 defaults: open 11, extend 1).  The band keeps the cost linear in
the alignment length rather than quadratic, which is the property muBLASTP's
cache-blocking relies on.
"""

from __future__ import annotations

import numpy as np

from repro.blast.scoring import BLOSUM62
from repro.errors import PaParError

GAP_OPEN = 11
GAP_EXTEND = 1
NEG_INF = -(10**9)


def banded_gapped_score(
    query: np.ndarray,
    subject: np.ndarray,
    band: int = 16,
    gap_open: int = GAP_OPEN,
    gap_extend: int = GAP_EXTEND,
) -> int:
    """Best local alignment score within ``±band`` of the main diagonal.

    Affine-gap Smith-Waterman (Gotoh) restricted to the band around the
    seed's diagonal; the caller aligns windows around a seed so the main
    diagonal is the seed diagonal.
    """
    if band < 1:
        raise PaParError(f"band must be >= 1, got {band!r}")
    m, n = len(query), len(subject)
    if m == 0 or n == 0:
        return 0
    best = 0
    # H: match matrix, E: gap-in-query, F: gap-in-subject; rows over query
    width = 2 * band + 1
    H_prev = np.zeros(width, dtype=np.int64)
    E_prev = np.full(width, NEG_INF, dtype=np.int64)
    for i in range(m):
        H_cur = np.zeros(width, dtype=np.int64)
        E_cur = np.full(width, NEG_INF, dtype=np.int64)
        F_run = NEG_INF
        for w in range(width):
            j = i + (w - band)
            if j < 0 or j >= n:
                H_cur[w] = 0
                F_run = NEG_INF
                continue
            sub = int(BLOSUM62[query[i], subject[j]])
            # diagonal move keeps the same band offset in the previous row
            diag = int(H_prev[w]) if i > 0 else 0
            # up move (gap in subject): previous row, offset w+1
            up_h = int(H_prev[w + 1]) if i > 0 and w + 1 < width else 0 if i == 0 else NEG_INF
            up_e = int(E_prev[w + 1]) if i > 0 and w + 1 < width else NEG_INF
            e = max(up_h - gap_open - gap_extend, up_e - gap_extend)
            # left move (gap in query): same row, offset w-1
            left_h = int(H_cur[w - 1]) if w - 1 >= 0 else NEG_INF
            f = max(left_h - gap_open - gap_extend, F_run - gap_extend)
            h = max(0, diag + sub, e, f)
            H_cur[w] = h
            E_cur[w] = e
            F_run = f
            if h > best:
                best = h
        H_prev, E_prev = H_cur, E_cur
    return int(best)


def gapped_extend_seed(
    query: np.ndarray,
    subject: np.ndarray,
    q_pos: int,
    d_pos: int,
    window: int = 64,
    band: int = 16,
) -> int:
    """Gapped score of the region around one seed.

    Clips a ``window``-residue context on each side of the seed (aligned so
    the seed diagonal is the band's main diagonal) and runs the banded
    kernel.
    """
    q_lo = max(0, q_pos - window)
    d_lo = max(0, d_pos - window)
    back = min(q_pos - q_lo, d_pos - d_lo)
    q_lo, d_lo = q_pos - back, d_pos - back
    q_hi = min(len(query), q_pos + window)
    d_hi = min(len(subject), d_pos + window)
    fwd = min(q_hi - q_pos, d_hi - d_pos)
    return banded_gapped_score(
        query[q_lo : q_pos + fwd], subject[d_lo : d_pos + fwd], band=band
    )
