"""FASTA reading and writing.

Real muBLASTP databases start life as FASTA files (``formatdb`` builds the
binary index from them).  These helpers round-trip
:class:`~repro.blast.database.SequenceDatabase` objects through FASTA so the
synthetic pipeline mirrors the real tool chain end to end.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.blast.database import SequenceDatabase
from repro.blast.scoring import decode, encode
from repro.errors import PaParError

PathLike = Union[str, os.PathLike]
LINE_WIDTH = 60


def write_fasta(path: PathLike, db: SequenceDatabase) -> None:
    """Write every sequence of ``db`` as a FASTA record."""
    with open(path, "w", encoding="ascii") as fh:
        for i in range(db.num_sequences):
            header = db.description(i)
            if not header.startswith(">"):
                header = ">" + header
            fh.write(header + "\n")
            seq = decode(db.sequence(i))
            for start in range(0, len(seq), LINE_WIDTH):
                fh.write(seq[start : start + LINE_WIDTH] + "\n")


def read_fasta(path: PathLike, name: str = "fasta") -> SequenceDatabase:
    """Parse a FASTA file into a :class:`SequenceDatabase`."""
    headers: list[bytes] = []
    sequences: list[np.ndarray] = []
    current: list[str] = []
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.rstrip("\r\n")
            if not line:
                continue
            if line.startswith(">"):
                if current:
                    sequences.append(encode("".join(current)))
                    current = []
                elif headers:
                    raise PaParError(f"{path}: empty FASTA record {headers[-1][:40]!r}")
                headers.append(line.encode("ascii"))
            else:
                if not headers:
                    raise PaParError(f"{path}: sequence data before the first '>' header")
                current.append(line)
    if headers and not current:
        raise PaParError(f"{path}: empty FASTA record {headers[-1][:40]!r}")
    if current:
        sequences.append(encode("".join(current)))
    if not headers:
        raise PaParError(f"{path}: no FASTA records found")

    lengths = np.array([len(s) for s in sequences], dtype=np.int64)
    desc_sizes = np.array([len(h) for h in headers], dtype=np.int64)
    return SequenceDatabase(
        name=name,
        residues=np.concatenate(sequences) if sequences else np.empty(0, dtype=np.uint8),
        seq_start=np.concatenate(([0], np.cumsum(lengths)))[:-1],
        seq_size=lengths,
        descriptions=b"".join(headers),
        desc_start=np.concatenate(([0], np.cumsum(desc_sizes)))[:-1],
        desc_size=desc_sizes,
    )
